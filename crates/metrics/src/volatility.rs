//! Volatility metrics: what node failures cost a schedule.
//!
//! A failure-aware run distinguishes *useful* work (processor-ticks that
//! contributed to a completed job) from *wasted* work (ticks executed by
//! commitments later killed by an outage, minus whatever a checkpoint
//! preserved). [`FailureStats`] packages the four quantities the
//! aggregate CSV sweeps across failure regimes and recovery policies.

use serde::{Deserialize, Serialize};

/// Outcome of one failure-aware run, computed by the online executor.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailureStats {
    /// Commitments killed by node outages.
    pub kills: u64,
    /// Jobs re-queued after a kill (equals `kills` under the policies
    /// shipped today, but the schema keeps them distinct — a policy may
    /// abandon work instead of resubmitting it).
    pub resubmits: u64,
    /// Processor-ticks executed and then lost (work of killed attempts
    /// not covered by a checkpoint).
    pub wasted_ticks: u64,
    /// Useful area over total area burnt:
    /// `Σ job area / (Σ job area + wasted_ticks)` — 1.0 on a reliable
    /// platform, dropping as outages destroy work.
    pub goodput: f64,
    /// Mean slowdown (flow over sequential-equivalent length) of the jobs
    /// that were interrupted at least once; `None` when nothing was
    /// interrupted (an empty CSV column, not a zero).
    pub interrupted_slowdown: Option<f64>,
}

impl FailureStats {
    /// Assemble the stats from run counters. `useful_area` is the total
    /// processor-tick area of the workload (every job counted once, at
    /// full length); `interrupted_slowdowns` holds one flow/length ratio
    /// per interrupted job.
    pub fn evaluate(
        useful_area: u64,
        wasted_ticks: u64,
        kills: u64,
        resubmits: u64,
        interrupted_slowdowns: &[f64],
    ) -> FailureStats {
        let burnt = useful_area + wasted_ticks;
        FailureStats {
            kills,
            resubmits,
            wasted_ticks,
            goodput: if burnt == 0 {
                1.0
            } else {
                useful_area as f64 / burnt as f64
            },
            interrupted_slowdown: if interrupted_slowdowns.is_empty() {
                None
            } else {
                Some(interrupted_slowdowns.iter().sum::<f64>() / interrupted_slowdowns.len() as f64)
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_is_useful_over_burnt() {
        let s = FailureStats::evaluate(900, 100, 3, 3, &[2.0, 4.0]);
        assert!((s.goodput - 0.9).abs() < 1e-12);
        assert_eq!(s.interrupted_slowdown, Some(3.0));
    }

    #[test]
    fn reliable_run_is_perfect_goodput_with_empty_slowdown() {
        let s = FailureStats::evaluate(500, 0, 0, 0, &[]);
        assert_eq!(s.goodput, 1.0);
        assert_eq!(s.interrupted_slowdown, None);
        assert_eq!(s.kills, 0);
    }

    #[test]
    fn empty_workload_does_not_divide_by_zero() {
        let s = FailureStats::evaluate(0, 0, 0, 0, &[]);
        assert_eq!(s.goodput, 1.0);
    }
}
