//! End-to-end integration: workload generation → every PT policy →
//! validation → criteria, across the crate boundaries.

use lsps::core::allot::{two_phase_moldable, AllotRule};
use lsps::core::mixed::{mixed_schedule, MixedStrategy};
use lsps::prelude::*;

const M: usize = 50;

fn moldable_workload(n: usize, seed: u64) -> Vec<Job> {
    let mut rng = SimRng::seed_from(seed);
    WorkloadSpec::fig2_parallel(n).generate(M, &mut rng)
}

fn rigidify(jobs: &[Job]) -> Vec<Job> {
    jobs.iter()
        .map(|j| match j.profile() {
            Some(p) => {
                let k = (p.max_procs() / 2).max(1);
                let mut c = j.clone();
                c.kind = JobKind::Rigid {
                    procs: k,
                    len: p.time(k),
                };
                c
            }
            None => j.clone(),
        })
        .collect()
}

fn zeroed(jobs: &[Job]) -> Vec<Job> {
    jobs.iter()
        .map(|j| {
            let mut c = j.clone();
            c.release = Time::ZERO;
            c
        })
        .collect()
}

#[test]
fn every_policy_schedules_the_same_workload_validly() {
    let moldable = moldable_workload(60, 1);
    let rigid = rigidify(&moldable);
    let rigid0 = zeroed(&rigid);
    let moldable0 = zeroed(&moldable);

    // (name, schedule, jobs to validate against)
    let runs: Vec<(&str, Schedule, &Vec<Job>)> = vec![
        (
            "list FCFS",
            list_schedule(&rigid0, M, JobOrder::Fcfs),
            &rigid0,
        ),
        (
            "shelf FFDH",
            shelf_schedule(&rigid0, M, ShelfAlgo::Ffdh),
            &rigid0,
        ),
        (
            "EASY backfill",
            backfill_schedule(&rigid, M, &[], BackfillPolicy::Easy),
            &rigid,
        ),
        (
            "conservative backfill",
            backfill_schedule(&rigid, M, &[], BackfillPolicy::Conservative),
            &rigid,
        ),
        ("SMART", smart_schedule(&rigid0, M, true), &rigid0),
        (
            "MRT",
            mrt_schedule(&moldable0, M, MrtParams::default()),
            &moldable0,
        ),
        (
            "batch(MRT)",
            batch_online(&moldable, M, |b, m| {
                mrt_schedule(b, m, MrtParams::default())
            }),
            &moldable,
        ),
        (
            "bi-criteria",
            bicriteria_schedule(&moldable, M, BiCriteriaParams::default()),
            &moldable,
        ),
        (
            "two-phase balanced",
            two_phase_moldable(&moldable0, M, AllotRule::Balanced, JobOrder::Lpt),
            &moldable0,
        ),
        (
            "mixed rigid-into-batches",
            mixed_schedule(&moldable, M, MixedStrategy::RigidIntoBatches),
            &moldable,
        ),
    ];

    for (name, sched, jobs) in &runs {
        assert_eq!(sched.validate(jobs), Ok(()), "{name} must validate");
        assert_eq!(sched.len(), jobs.len(), "{name} schedules everything");
        let crit = Criteria::evaluate(&sched.completed(jobs));
        assert!(crit.cmax > 0.0, "{name} has a real makespan");
        // No schedule may beat the certified lower bounds.
        let lb = cmax_lower_bound(jobs, M).as_secs_f64();
        assert!(
            crit.cmax >= lb - 1e-9,
            "{name}: makespan {} below the lower bound {lb}!",
            crit.cmax
        );
        let wlb = wsum_lower_bound(jobs, M);
        assert!(
            crit.weighted_sum_completion >= wlb - 1e-6,
            "{name}: sum wC below the lower bound!"
        );
    }
}

#[test]
fn criteria_consistency_across_policies() {
    // Mean flow >= mean run; Cmax >= max flow component; utilization <= 1.
    let jobs = zeroed(&rigidify(&moldable_workload(40, 3)));
    let sched = smart_schedule(&jobs, M, true);
    let recs = sched.completed(&jobs);
    let crit = Criteria::evaluate(&recs);
    assert!(crit.utilization(M) <= 1.0 + 1e-9);
    assert!(crit.mean_flow <= crit.max_flow + 1e-9);
    assert!(crit.cmax >= crit.mean_completion);
    for r in &recs {
        assert!(r.flow() >= r.run());
    }
}

#[test]
fn trace_roundtrip_preserves_scheduling_outcome() {
    // JSON-lines roundtrip must not perturb a single start time.
    let jobs = moldable_workload(30, 5);
    let text = lsps::workload::swf::to_jsonl(&jobs);
    let back = lsps::workload::swf::from_jsonl(&text).expect("roundtrip");
    assert_eq!(jobs, back);
    let a = bicriteria_schedule(&jobs, M, BiCriteriaParams::default());
    let b = bicriteria_schedule(&back, M, BiCriteriaParams::default());
    assert_eq!(a, b);
}

#[test]
fn reservations_flow_through_the_whole_stack() {
    let jobs = rigidify(&moldable_workload(25, 7));
    let resv = [Reservation {
        start: Time::from_secs(100),
        end: Time::from_secs(2_000),
        procs: M / 2,
    }];
    for policy in [BackfillPolicy::Conservative, BackfillPolicy::Easy] {
        let s = backfill_schedule(&jobs, M, &resv, policy);
        assert_eq!(s.validate(&jobs), Ok(()));
        assert!(
            lsps::core::backfill::respects_reservations(&s, M, &resv),
            "{policy:?} violated a reservation"
        );
    }
}
