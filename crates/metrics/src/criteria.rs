//! The criteria of §3, computed in one pass.

use serde::{Deserialize, Serialize};

use lsps_des::{Dur, Time};

use crate::completed::CompletedJob;

/// All §3 criteria evaluated over a set of completed jobs.
///
/// Time-valued criteria are reported in seconds (`f64`) for readability;
/// exact tick values are recoverable from the raw records.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Criteria {
    /// Number of jobs.
    pub n: usize,
    /// Makespan `max Cj`, seconds.
    pub cmax: f64,
    /// `Σ Ci`, seconds.
    pub sum_completion: f64,
    /// `Σ ωi Ci`, weight-seconds.
    pub weighted_sum_completion: f64,
    /// Mean completion `Σ Ci / n`, seconds.
    pub mean_completion: f64,
    /// Paper's mean stretch: `Σ (Ci − ri) / n` (mean flow), seconds.
    pub mean_flow: f64,
    /// Paper's max stretch: `max (Ci − ri)` (longest wait between
    /// submission and completion), seconds.
    pub max_flow: f64,
    /// Mean normalized stretch (slowdown): `mean (Ci − ri) / pi(1)`.
    pub mean_slowdown: f64,
    /// Max normalized stretch.
    pub max_slowdown: f64,
    /// Mean *bounded* slowdown: `mean (Ci − ri) / max(pi(1), τ)` with
    /// τ = 10 s — the standard fix that stops sub-second jobs from
    /// dominating the stretch statistics.
    pub mean_bounded_slowdown: f64,
    /// Number of late jobs (tardiness criteria).
    pub n_late: usize,
    /// Total tardiness `Σ max(0, Ci − di)`, seconds.
    pub total_tardiness: f64,
    /// Maximum tardiness, seconds.
    pub max_tardiness: f64,
    /// Completed jobs per simulated hour over the span `[min ri, Cmax]`.
    pub throughput_per_hour: f64,
    /// Total work area `Σ procs·run`, CPU-seconds.
    pub total_area: f64,
}

impl Criteria {
    /// Evaluate over `jobs`. Panics on an empty slice — an empty schedule
    /// has no meaningful criteria.
    pub fn evaluate(jobs: &[CompletedJob]) -> Criteria {
        assert!(!jobs.is_empty(), "criteria of an empty job set");
        let n = jobs.len();
        let mut cmax = Time::ZERO;
        let mut first_release = Time::MAX;
        let mut sum_completion = 0.0;
        let mut weighted_sum = 0.0;
        let mut sum_flow = 0.0;
        let mut max_flow = Dur::ZERO;
        let mut sum_slow = 0.0;
        let mut max_slow = 0.0f64;
        let mut sum_bsld = 0.0;
        const TAU_S: f64 = 10.0;
        let mut n_late = 0;
        let mut total_tard = Dur::ZERO;
        let mut max_tard = Dur::ZERO;
        let mut area = Dur::ZERO;
        for j in jobs {
            cmax = cmax.max(j.completion);
            first_release = first_release.min(j.release);
            let c = j.completion.as_secs_f64();
            sum_completion += c;
            weighted_sum += j.weight * c;
            sum_flow += j.flow().as_secs_f64();
            max_flow = max_flow.max(j.flow());
            let s = j.slowdown();
            sum_slow += s;
            max_slow = max_slow.max(s);
            let denom = j.seq_time.as_secs_f64().max(TAU_S);
            sum_bsld += (j.flow().as_secs_f64() / denom).max(1.0);
            if j.is_late() {
                n_late += 1;
            }
            total_tard += j.tardiness();
            max_tard = max_tard.max(j.tardiness());
            area += j.area();
        }
        let span_s = (cmax.saturating_sub(first_release)).as_secs_f64();
        let throughput_per_hour = if span_s > 0.0 {
            n as f64 / span_s * 3600.0
        } else {
            f64::INFINITY
        };
        Criteria {
            n,
            cmax: cmax.as_secs_f64(),
            sum_completion,
            weighted_sum_completion: weighted_sum,
            mean_completion: sum_completion / n as f64,
            mean_flow: sum_flow / n as f64,
            max_flow: max_flow.as_secs_f64(),
            mean_slowdown: sum_slow / n as f64,
            max_slowdown: max_slow,
            mean_bounded_slowdown: sum_bsld / n as f64,
            n_late,
            total_tardiness: total_tard.as_secs_f64(),
            max_tardiness: max_tard.as_secs_f64(),
            throughput_per_hour,
            total_area: area.as_secs_f64(),
        }
    }

    /// Machine utilization over `[0, Cmax]` on `m` processors: area divided
    /// by `m · Cmax`.
    pub fn utilization(&self, m: usize) -> f64 {
        if self.cmax == 0.0 {
            return 0.0;
        }
        self.total_area / (m as f64 * self.cmax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_des::Dur;
    use lsps_workload::Job;

    fn t(x: u64) -> Time {
        Time::from_secs(x)
    }

    /// Two sequential jobs on one machine: j1 [0,10), j2 released 2, runs
    /// [10, 30).
    fn two_jobs() -> Vec<CompletedJob> {
        let j1 = Job::sequential(1, Dur::from_secs(10));
        let j2 = Job::sequential(2, Dur::from_secs(20))
            .released_at(t(2))
            .with_weight(3.0)
            .with_due(t(25));
        vec![
            CompletedJob::from_job(&j1, t(0), t(10), 1),
            CompletedJob::from_job(&j2, t(10), t(30), 1),
        ]
    }

    #[test]
    fn hand_computed_values() {
        let c = Criteria::evaluate(&two_jobs());
        assert_eq!(c.n, 2);
        assert!((c.cmax - 30.0).abs() < 1e-9);
        assert!((c.sum_completion - 40.0).abs() < 1e-9);
        // 1·10 + 3·30 = 100.
        assert!((c.weighted_sum_completion - 100.0).abs() < 1e-9);
        assert!((c.mean_completion - 20.0).abs() < 1e-9);
        // Flows: 10 and 28.
        assert!((c.mean_flow - 19.0).abs() < 1e-9);
        assert!((c.max_flow - 28.0).abs() < 1e-9);
        // Slowdowns: 10/10 = 1 and 28/20 = 1.4.
        assert!((c.mean_slowdown - 1.2).abs() < 1e-9);
        assert!((c.max_slowdown - 1.4).abs() < 1e-9);
        // Bounded slowdown with τ=10 s: both jobs exceed τ, and the BSLD
        // floors at 1: same values here.
        assert!((c.mean_bounded_slowdown - 1.2).abs() < 1e-9);
        // j2 due at 25, finished 30.
        assert_eq!(c.n_late, 1);
        assert!((c.total_tardiness - 5.0).abs() < 1e-9);
        assert!((c.max_tardiness - 5.0).abs() < 1e-9);
        // Area = 10 + 20 CPU-seconds.
        assert!((c.total_area - 30.0).abs() < 1e-9);
        // Utilization on 1 machine over [0, 30].
        assert!((c.utilization(1) - 1.0).abs() < 1e-9);
        assert!((c.utilization(2) - 0.5).abs() < 1e-9);
        // Throughput: 2 jobs over a 30 s span.
        assert!((c.throughput_per_hour - 240.0).abs() < 1e-9);
    }

    #[test]
    fn bounded_slowdown_floors_tiny_jobs() {
        // A 1 s job waiting 100 s: raw slowdown 101, bounded 101/10 ≈ 10.1.
        let j = Job::sequential(1, Dur::from_secs(1));
        let rec = CompletedJob::from_job(&j, t(100), t(101), 1);
        let c = Criteria::evaluate(&[rec]);
        assert!((c.max_slowdown - 101.0).abs() < 1e-9);
        assert!((c.mean_bounded_slowdown - 10.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_is_rejected() {
        Criteria::evaluate(&[]);
    }

    #[test]
    fn single_instant_job_has_infinite_throughput() {
        let j = Job::sequential(1, Dur::from_ticks(1));
        let rec = CompletedJob::from_job(&j, Time::ZERO, Time::ZERO, 1);
        let c = Criteria::evaluate(&[rec]);
        assert!(c.throughput_per_hour.is_infinite());
    }
}
