//! Malleable tasks: allotments that change *during* execution (§2.2).
//!
//! "Malleable jobs when the number of processors may change during the
//! execution (by preemption of the tasks or simply by data
//! redistributions). […] Malleability is much more easily usable from the
//! scheduling point of view but requires advanced capabilities from the
//! runtime environment."
//!
//! The classic malleable policy is **dynamic equipartition (DEQ)**: at
//! every arrival and completion the machine is re-divided evenly among the
//! active jobs (capped by each job's useful parallelism). A malleable
//! execution is a sequence of [`MalleableSegment`]s per job; a job
//! completes when its accumulated progress `Σ len/p(k)` reaches 1 — the
//! natural work model for profiles with monotone work.
//!
//! [`MalleableSchedule::validate`] checks processor-disjointness exactly
//! (integer sweep) and progress completeness within one tick of rounding
//! per segment.

use std::collections::HashMap;

use lsps_des::{Dur, Time};
use lsps_metrics::CompletedJob;
use lsps_platform::ProcSet;
use lsps_workload::{Job, JobId, JobKind};

/// One constant-allotment slice of a malleable execution.
#[derive(Clone, Debug, PartialEq)]
pub struct MalleableSegment {
    /// The job.
    pub job: JobId,
    /// Slice start.
    pub start: Time,
    /// Slice end (exclusive).
    pub end: Time,
    /// Processors held during the slice.
    pub procs: ProcSet,
}

/// A complete malleable schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MalleableSchedule {
    m: usize,
    segments: Vec<MalleableSegment>,
}

/// Why a malleable schedule failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MalleableError {
    /// Two segments overlap on a shared processor.
    Overlap(JobId, JobId),
    /// A segment starts before the job's release.
    EarlyStart(JobId),
    /// A segment uses an inadmissible allotment or outside the machine.
    BadSegment(JobId),
    /// Accumulated progress differs from 1 beyond rounding tolerance.
    WrongProgress(JobId),
    /// A job has no segments.
    Missing(JobId),
}

impl MalleableSchedule {
    /// An empty schedule on `m` processors.
    pub fn new(m: usize) -> Self {
        assert!(m >= 1);
        MalleableSchedule {
            m,
            segments: Vec::new(),
        }
    }

    /// The segments, in insertion order.
    pub fn segments(&self) -> &[MalleableSegment] {
        &self.segments
    }

    /// Append a segment.
    pub fn push(&mut self, seg: MalleableSegment) {
        self.segments.push(seg);
    }

    /// Latest segment end.
    pub fn makespan(&self) -> Time {
        self.segments
            .iter()
            .map(|s| s.end)
            .fold(Time::ZERO, Time::max)
    }

    /// Per-job completion records (`procs` reports the maximal allotment
    /// the job ever held).
    pub fn completed(&self, jobs: &[Job]) -> Vec<CompletedJob> {
        let by_id: HashMap<JobId, &Job> = jobs.iter().map(|j| (j.id, j)).collect();
        let mut spans: HashMap<JobId, (Time, Time, usize)> = HashMap::new();
        for s in &self.segments {
            let e = spans
                .entry(s.job)
                .or_insert((s.start, s.end, s.procs.len()));
            e.0 = e.0.min(s.start);
            e.1 = e.1.max(s.end);
            e.2 = e.2.max(s.procs.len());
        }
        let mut out: Vec<CompletedJob> = spans
            .into_iter()
            .map(|(id, (start, end, k))| {
                let job = by_id.get(&id).unwrap_or_else(|| panic!("unknown job {id}"));
                CompletedJob::from_job(job, start, end, k)
            })
            .collect();
        out.sort_by_key(|r| r.id);
        out
    }

    /// Full validation (see module docs). `tol_ticks_per_segment` bounds
    /// the rounding slack granted per segment (1 tick is the natural
    /// choice: every segment end is rounded up to the grid).
    pub fn validate(&self, jobs: &[Job]) -> Result<(), MalleableError> {
        let by_id: HashMap<JobId, &Job> = jobs.iter().map(|j| (j.id, j)).collect();
        let machine = ProcSet::full(self.m);
        let mut progress: HashMap<JobId, (f64, usize)> = HashMap::new(); // (sum, segments)
        for s in &self.segments {
            let job = by_id.get(&s.job).ok_or(MalleableError::BadSegment(s.job))?;
            if s.start < job.release {
                return Err(MalleableError::EarlyStart(s.job));
            }
            let k = s.procs.len();
            let profile = match &job.kind {
                JobKind::Malleable { profile } | JobKind::Moldable { profile } => profile,
                _ => return Err(MalleableError::BadSegment(s.job)),
            };
            if k < 1 || k > profile.max_procs() || !s.procs.is_subset(&machine) || s.end < s.start {
                return Err(MalleableError::BadSegment(s.job));
            }
            let e = progress.entry(s.job).or_insert((0.0, 0));
            e.0 += (s.end - s.start).ticks() as f64 / profile.time(k).ticks() as f64;
            e.1 += 1;
        }
        for j in jobs {
            let Some(&(p, n_segs)) = progress.get(&j.id) else {
                return Err(MalleableError::Missing(j.id));
            };
            // Each segment end is rounded up by at most one tick; grant the
            // corresponding progress slack.
            let tol = n_segs as f64 / j.min_time().ticks().max(1) as f64 + 1e-9;
            if p < 1.0 - 1e-9 || p > 1.0 + tol {
                return Err(MalleableError::WrongProgress(j.id));
            }
        }
        // Exact disjointness sweep.
        let mut order: Vec<&MalleableSegment> = self.segments.iter().collect();
        order.sort_by_key(|s| (s.start, s.end, s.job));
        let mut active: Vec<&MalleableSegment> = Vec::new();
        for s in order {
            active.retain(|b| b.end > s.start);
            for b in &active {
                if !b.procs.is_disjoint(&s.procs) && s.end > s.start && b.job != s.job {
                    return Err(MalleableError::Overlap(b.job, s.job));
                }
            }
            if s.end > s.start {
                active.push(s);
            }
        }
        Ok(())
    }
}

/// Dynamic equipartition: re-divide the machine among active jobs at every
/// arrival/completion. Jobs must be malleable or moldable (their profile is
/// interpreted as instantaneous rate `1/p(k)`).
///
/// When more jobs are active than processors, the earliest-released jobs
/// get one processor each and the rest wait (FIFO).
pub fn deq_schedule(jobs: &[Job], m: usize) -> MalleableSchedule {
    for j in jobs {
        assert!(
            matches!(j.kind, JobKind::Malleable { .. } | JobKind::Moldable { .. }),
            "deq_schedule needs malleable/moldable jobs; job {} is not",
            j.id
        );
    }
    let mut sched = MalleableSchedule::new(m);
    if jobs.is_empty() {
        return sched;
    }
    // Job state: remaining progress in [0, 1].
    struct Active<'a> {
        job: &'a Job,
        remaining: f64,
    }
    let mut pending: Vec<&Job> = jobs.iter().collect();
    pending.sort_by_key(|j| (j.release, j.id));
    let mut next = 0usize;
    let mut active: Vec<Active<'_>> = Vec::new();
    let mut now = pending[0].release;

    loop {
        // Admit released jobs.
        while next < pending.len() && pending[next].release <= now {
            active.push(Active {
                job: pending[next],
                remaining: 1.0,
            });
            next += 1;
        }
        if active.is_empty() {
            if next >= pending.len() {
                break;
            }
            now = pending[next].release;
            continue;
        }
        // Equipartition: running jobs = first min(|active|, m) by
        // (release, id); each gets an equal share capped by its profile.
        active.sort_by_key(|a| (a.job.release, a.job.id));
        let runnable = active.len().min(m);
        let base = m / runnable;
        let extra = m % runnable; // first `extra` jobs get one more
        let mut allot: Vec<usize> = (0..runnable)
            .map(|i| {
                let share = base + usize::from(i < extra);
                share.min(active[i].job.max_procs()).min(m).max(1)
            })
            .collect();
        // Redistribute processors freed by capped jobs to the others.
        let mut spare: usize = m - allot.iter().sum::<usize>().min(m);
        for i in 0..runnable {
            if spare == 0 {
                break;
            }
            let cap = active[i].job.max_procs().min(m);
            let grow = (cap - allot[i]).min(spare);
            allot[i] += grow;
            spare -= grow;
        }

        // Next event: earliest projected completion or next arrival.
        let mut next_completion = Dur::MAX;
        for (i, a) in active.iter().take(runnable).enumerate() {
            let p = a.job.time_on(allot[i]);
            let eta = Dur::from_ticks((a.remaining * p.ticks() as f64).ceil() as u64)
                .max(Dur::from_ticks(1));
            next_completion = next_completion.min(eta);
        }
        let horizon = if next < pending.len() {
            let until_arrival = pending[next].release - now;
            next_completion.min(until_arrival).max(Dur::from_ticks(1))
        } else {
            next_completion
        };
        let seg_end = now + horizon;

        // Emit segments and progress the running jobs.
        let mut offset = 0usize;
        for (i, a) in active.iter_mut().take(runnable).enumerate() {
            let k = allot[i];
            let p = a.job.time_on(k);
            sched.push(MalleableSegment {
                job: a.job.id,
                start: now,
                end: seg_end,
                procs: ProcSet::range(offset, offset + k),
            });
            offset += k;
            a.remaining -= horizon.ticks() as f64 / p.ticks() as f64;
        }
        now = seg_end;
        active.retain(|a| a.remaining > 1e-9);
        if active.is_empty() && next >= pending.len() {
            break;
        }
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_workload::{MoldableProfile, SpeedupModel};

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    fn linear_malleable(id: u64, seq: u64, kmax: usize) -> Job {
        let profile = MoldableProfile::from_model(d(seq), &SpeedupModel::Linear, kmax);
        Job {
            kind: JobKind::Malleable { profile },
            ..Job::sequential(id, d(seq))
        }
    }

    #[test]
    fn single_job_takes_whole_machine() {
        let jobs = vec![linear_malleable(1, 1000, 8)];
        let s = deq_schedule(&jobs, 8);
        assert_eq!(s.validate(&jobs), Ok(()));
        // Linear on 8 procs: ~125 ticks (+ rounding).
        let mk = s.makespan().ticks();
        assert!((125..=135).contains(&mk), "makespan {mk}");
    }

    #[test]
    fn two_jobs_split_then_winner_expands() {
        // Two linear jobs, one twice the work: both get m/2; when the small
        // one finishes the big one expands to the full machine.
        let jobs = vec![linear_malleable(1, 800, 8), linear_malleable(2, 1600, 8)];
        let s = deq_schedule(&jobs, 8);
        assert_eq!(s.validate(&jobs), Ok(()));
        let wide: Vec<_> = s
            .segments()
            .iter()
            .filter(|seg| seg.job == JobId(2) && seg.procs.len() == 8)
            .collect();
        assert!(!wide.is_empty(), "job 2 must expand to the full machine");
        // Equipartition is work-conserving on linear jobs: makespan equals
        // total work / m (up to segment rounding).
        let mk = s.makespan().ticks();
        assert!((300..=310).contains(&mk), "makespan {mk}");
    }

    #[test]
    fn arrival_triggers_repartition() {
        let jobs = vec![
            linear_malleable(1, 1000, 4),
            linear_malleable(2, 1000, 4).released_at(Time::from_ticks(50)),
        ];
        let s = deq_schedule(&jobs, 4);
        assert_eq!(s.validate(&jobs), Ok(()));
        // Job 1 runs alone on 4 procs for 50 ticks, then both share 2+2.
        let first = &s.segments()[0];
        assert_eq!(first.job, JobId(1));
        assert_eq!(first.procs.len(), 4);
        assert_eq!(first.end, Time::from_ticks(50));
        let shared: Vec<_> = s
            .segments()
            .iter()
            .filter(|seg| seg.start == Time::from_ticks(50))
            .collect();
        assert_eq!(shared.len(), 2);
        assert!(shared.iter().all(|seg| seg.procs.len() == 2));
    }

    #[test]
    fn more_jobs_than_processors_queue_fifo() {
        let jobs: Vec<Job> = (0..6).map(|i| linear_malleable(i, 100, 4)).collect();
        let s = deq_schedule(&jobs, 4);
        assert_eq!(s.validate(&jobs), Ok(()));
        // At t=0 only 4 jobs run (1 proc each); ids 4 and 5 start later.
        let early: Vec<JobId> = s
            .segments()
            .iter()
            .filter(|seg| seg.start == Time::ZERO)
            .map(|seg| seg.job)
            .collect();
        assert_eq!(early.len(), 4);
        assert!(!early.contains(&JobId(4)) && !early.contains(&JobId(5)));
    }

    #[test]
    fn capped_jobs_release_spare_processors() {
        // One job can only use 2 procs; the other is unbounded: spare
        // processors flow to the unbounded one.
        let jobs = vec![linear_malleable(1, 1000, 2), linear_malleable(2, 1000, 8)];
        let s = deq_schedule(&jobs, 8);
        assert_eq!(s.validate(&jobs), Ok(()));
        let first_segs: Vec<_> = s
            .segments()
            .iter()
            .filter(|seg| seg.start == Time::ZERO)
            .collect();
        let k1 = first_segs
            .iter()
            .find(|s| s.job == JobId(1))
            .unwrap()
            .procs
            .len();
        let k2 = first_segs
            .iter()
            .find(|s| s.job == JobId(2))
            .unwrap()
            .procs
            .len();
        assert_eq!(k1, 2);
        assert_eq!(k2, 6, "spare procs go to the unbounded job");
    }

    #[test]
    fn malleability_beats_moldable_batching_on_flow() {
        use crate::batch::batch_online;
        use crate::mrt::{mrt_schedule, MrtParams};
        use lsps_des::SimRng;
        use lsps_metrics::Criteria;
        // Staggered arrivals: the malleable policy adapts instantly; the
        // batch policy makes later arrivals wait for the batch boundary.
        let mut rng = SimRng::seed_from(3);
        let m = 16;
        let jobs: Vec<Job> = (0..12)
            .map(|i| {
                linear_malleable(i, rng.int_range(500, 2_000), m)
                    .released_at(Time::from_ticks(i * 200))
            })
            .collect();
        let deq = deq_schedule(&jobs, m);
        assert_eq!(deq.validate(&jobs), Ok(()));
        let deq_flow = Criteria::evaluate(&deq.completed(&jobs)).mean_flow;
        let batch = batch_online(&jobs, m, |b, mm| mrt_schedule(b, mm, MrtParams::default()));
        let batch_flow = Criteria::evaluate(&batch.completed(&jobs)).mean_flow;
        assert!(
            deq_flow <= batch_flow,
            "DEQ flow {deq_flow} vs batch flow {batch_flow}"
        );
    }

    #[test]
    fn validation_catches_overlap_and_progress() {
        // seq 200, k = 2 ⇒ p(2) = 100: both segments complete their job
        // exactly, so only the processor overlap is wrong.
        let jobs = vec![linear_malleable(1, 200, 4), linear_malleable(2, 200, 4)];
        let mut s = MalleableSchedule::new(4);
        s.push(MalleableSegment {
            job: JobId(1),
            start: Time::ZERO,
            end: Time::from_ticks(100),
            procs: ProcSet::range(0, 2),
        });
        // Overlapping procs with job 1.
        s.push(MalleableSegment {
            job: JobId(2),
            start: Time::from_ticks(50),
            end: Time::from_ticks(150),
            procs: ProcSet::range(1, 3),
        });
        assert!(matches!(
            s.validate(&jobs),
            Err(MalleableError::Overlap(_, _))
        ));
        // Too little progress.
        let mut s2 = MalleableSchedule::new(4);
        s2.push(MalleableSegment {
            job: JobId(1),
            start: Time::ZERO,
            end: Time::from_ticks(10),
            procs: ProcSet::range(0, 1),
        });
        s2.push(MalleableSegment {
            job: JobId(2),
            start: Time::ZERO,
            end: Time::from_ticks(100),
            procs: ProcSet::range(2, 3),
        });
        assert_eq!(
            s2.validate(&jobs),
            Err(MalleableError::WrongProgress(JobId(1)))
        );
    }

    #[test]
    fn empty_input() {
        let s = deq_schedule(&[], 4);
        assert!(s.segments().is_empty());
    }
}
