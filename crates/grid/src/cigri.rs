//! The centralized CiGri model: best-effort campaign runs in the holes of
//! local schedules, killed on local demand, resubmitted by the server.
//!
//! Mechanics (per §5.2 of the paper):
//!
//! * every cluster keeps **two timelines**: `local_tl` holds local jobs and
//!   reservations only; `full_tl` additionally holds best-effort bookings.
//!   Local placement consults `local_tl`, so grid jobs are *invisible* to
//!   local users — the paper's no-disturbance guarantee by construction;
//! * a local booking that collides with running best-effort work kills it:
//!   the victim's booking is truncated, its end event cancelled, the run
//!   requeued at the server, and the spent CPU time counted as *wasted*;
//! * the server injects queued runs into current holes of `full_tl`
//!   (the paper: "fill the holes […] using the same idea as conservative
//!   backfilling"), triggered periodically and on every completion.

use std::collections::{HashMap, VecDeque};

use lsps_core::policy::{Backfilling, PinnedBooking, Policy, PolicyCtx};
use lsps_des::{Ctx, Dur, EventKey, Model, Simulation, Time};
use lsps_metrics::{CompletedJob, Criteria};
use lsps_platform::{BookingId, BookingKind, Platform, Timeline};
use lsps_workload::{Campaign, Job, JobKind};

/// Events of the CiGri simulation.
#[derive(Debug)]
pub enum CigriEvent {
    /// A local job arrives at its cluster's queue.
    LocalSubmit {
        /// Target cluster index.
        cluster: usize,
        /// The job (rigid; moldable locals are allotted upstream).
        job: Job,
    },
    /// A local job finishes.
    LocalEnd {
        /// Cluster index.
        cluster: usize,
        /// Index into the cluster's in-flight local record list.
        slot: usize,
    },
    /// A best-effort run finishes.
    BeEnd {
        /// Cluster index.
        cluster: usize,
        /// Booking of the run.
        booking: BookingId,
    },
    /// A campaign is submitted to the central server.
    CampaignSubmit(Campaign),
    /// The server scans all clusters for holes.
    ServerPoll,
}

struct BeRun {
    len: Dur, // scaled for the host cluster
    raw_len: Dur,
    started: Time,
    end_event: EventKey,
}

struct ClusterState {
    speed: f64,
    local_tl: Timeline,
    full_tl: Timeline,
    /// In-flight local jobs: (job, start, end, local booking, full booking).
    inflight: Vec<(Job, Time, Time, BookingId, BookingId)>,
    completed: Vec<CompletedJob>,
    be_running: HashMap<BookingId, BeRun>,
    kills: u64,
    wasted: Dur,
    be_done: u64,
    be_busy: Dur,
    /// Proc-ticks of finished work (local + best-effort + killed tails),
    /// accumulated so past bookings can be garbage-collected without losing
    /// the utilization accounting.
    busy_local_ticks: u128,
    busy_total_ticks: u128,
}

/// The CiGri grid model (plug into [`Simulation`]).
pub struct CigriSim {
    clusters: Vec<ClusterState>,
    /// Queued best-effort run lengths (reference-speed units).
    queue: VecDeque<Dur>,
    poll_period: Dur,
    poll_scheduled: bool,
    best_effort_enabled: bool,
    campaign_done_at: Time,
    be_total: u64,
    /// Cluster-level scheduling policy for local jobs. Each arrival is
    /// placed by handing the policy the single job plus the cluster's
    /// current local bookings as [`PinnedBooking`]s — the same `Policy`
    /// abstraction the off-line experiments use, driven incrementally.
    local_policy: Box<dyn Policy>,
}

impl CigriSim {
    /// Build from a platform: one scheduling domain per cluster, durations
    /// scaled by the cluster's mean speed. `best_effort_enabled = false`
    /// gives the no-grid baseline (campaigns queue forever).
    pub fn new(platform: &Platform, poll_period: Dur, best_effort_enabled: bool) -> CigriSim {
        assert!(!poll_period.is_zero());
        CigriSim {
            clusters: platform
                .clusters
                .iter()
                .map(|c| ClusterState {
                    speed: c.mean_speed(),
                    local_tl: Timeline::with_procs(c.total_procs()),
                    full_tl: Timeline::with_procs(c.total_procs()),
                    inflight: Vec::new(),
                    completed: Vec::new(),
                    be_running: HashMap::new(),
                    kills: 0,
                    wasted: Dur::ZERO,
                    be_done: 0,
                    be_busy: Dur::ZERO,
                    busy_local_ticks: 0,
                    busy_total_ticks: 0,
                })
                .collect(),
            queue: VecDeque::new(),
            poll_period,
            poll_scheduled: false,
            best_effort_enabled,
            campaign_done_at: Time::ZERO,
            be_total: 0,
            local_policy: Box::new(Backfilling::conservative()),
        }
    }

    /// Replace the cluster-level local scheduling policy (default:
    /// conservative backfilling, the production batch-system behaviour).
    /// Local placement hands the policy the cluster's current bookings as
    /// [`PinnedBooking`]s — arbitrary, time-overlapping, exact processor
    /// sets — so the policy must support pinned bookings (batch policies
    /// that only align around disjoint blackout windows do not qualify).
    pub fn with_local_policy(mut self, policy: Box<dyn Policy>) -> CigriSim {
        assert!(
            policy.supports_pinned(),
            "{}: cluster-level scheduling needs a policy that honours \
             pinned (exact, possibly overlapping) bookings",
            policy.name()
        );
        self.local_policy = policy;
        self
    }

    /// Scale a reference duration to cluster `c`'s speed (conservative
    /// ceiling).
    fn scale(&self, c: usize, len: Dur) -> Dur {
        len.scale_ceil(1.0 / self.clusters[c].speed)
            .max(Dur::from_ticks(1))
    }

    fn submit_local(&mut self, now: Time, c: usize, job: Job, ctx: &mut Ctx<'_, CigriEvent>) {
        let q = match job.kind {
            JobKind::Rigid { procs, .. } => procs,
            _ => panic!("CigriSim schedules rigid local jobs; allot moldables upstream"),
        };
        let len = self.scale(c, job.time_on(q));
        let m = self.clusters[c].local_tl.capacity().len();
        assert!(q <= m, "job wider than cluster");
        // Placement sees only local load — grid jobs are invisible. The
        // decision goes through the same incremental hook the online
        // executor uses ([`Policy::schedule_pending`]): one rigid probe
        // (speed-scaled, released "now") around the cluster's current local
        // bookings as exact-processor commitments. The hook drops bookings
        // already over by the decision instant, so the gc'ed timeline can be
        // handed over wholesale.
        let (start, procs) = {
            let cl = &self.clusters[c];
            let release = now.max(job.release);
            let committed: Vec<PinnedBooking> = cl
                .local_tl
                .bookings()
                .map(|(_, b)| PinnedBooking {
                    start: b.start,
                    end: b.end,
                    procs: b.procs.clone(),
                })
                .collect();
            let mut probe = job.clone();
            probe.release = release;
            probe.kind = JobKind::Rigid { procs: q, len };
            let placed = self.local_policy.schedule_pending(
                &[probe],
                m,
                release,
                &committed,
                &PolicyCtx::default(),
            );
            let a = &placed.assignments()[0];
            (a.start, a.procs.clone())
        };
        let cl = &mut self.clusters[c];
        let end = start + len;
        let local_bk = cl
            .local_tl
            .book(start, end, procs.clone(), BookingKind::Job);

        // Kill every best-effort run colliding with the new local booking.
        let victims: Vec<BookingId> = cl
            .full_tl
            .bookings()
            .filter(|(_, b)| {
                b.kind == BookingKind::BestEffort
                    && b.start < end
                    && start < b.end
                    && !b.procs.is_disjoint(&procs)
            })
            .map(|(id, _)| id)
            .collect();
        for id in victims {
            let run = cl.be_running.remove(&id).expect("victim is running");
            ctx.cancel(run.end_event);
            // Kill immediately: the scheduler clears the node as soon as
            // the local job is booked (even if its start is in the future),
            // and the run restarts from scratch elsewhere — everything it
            // consumed so far is wasted.
            let kill_at = now.max(run.started);
            cl.full_tl.remove(id);
            let consumed = kill_at - run.started;
            cl.wasted += consumed;
            cl.busy_total_ticks += consumed.ticks() as u128;
            cl.kills += 1;
            self.queue.push_back(run.raw_len);
        }

        let full_bk = cl
            .full_tl
            .try_book(start, end, procs, BookingKind::Job)
            .expect("victims were cleared");
        let slot = cl.inflight.len();
        cl.inflight.push((job, start, end, local_bk, full_bk));
        ctx.schedule_at(end, CigriEvent::LocalEnd { cluster: c, slot });
        self.wake_server(now, ctx);
    }

    fn finish_local(&mut self, now: Time, c: usize, slot: usize) {
        let cl = &mut self.clusters[c];
        let (job, start, end, _, _) = cl.inflight[slot].clone();
        let procs = job.min_procs();
        let ticks = (end - start).ticks() as u128 * procs as u128;
        cl.busy_local_ticks += ticks;
        cl.busy_total_ticks += ticks;
        cl.completed
            .push(CompletedJob::from_job(&job, start, end, procs));
        // Past bookings no longer constrain placement; dropping them keeps
        // hole queries O(active) instead of O(history).
        cl.local_tl.gc(now);
        cl.full_tl.gc(now);
    }

    fn wake_server(&mut self, now: Time, ctx: &mut Ctx<'_, CigriEvent>) {
        if self.best_effort_enabled && !self.poll_scheduled && !self.queue.is_empty() {
            self.poll_scheduled = true;
            ctx.schedule_at(now, CigriEvent::ServerPoll);
        }
    }

    /// Fill current holes of every cluster with queued runs.
    fn poll(&mut self, now: Time, ctx: &mut Ctx<'_, CigriEvent>) {
        // Garbage-collect past bookings every server cycle: between local
        // completions (the only other gc site) a multi-day trace would
        // otherwise accumulate dead bookings in the availability profiles.
        // Safe for the utilization accounting because every finished
        // proc-tick is credited to `busy_*_ticks` by the completion/kill
        // handlers from their own records (`inflight`, `be_running`), never
        // read back from the timelines.
        for cl in &mut self.clusters {
            cl.local_tl.gc(now);
            cl.full_tl.gc(now);
        }
        // Fastest clusters first: they drain the campaign quickest.
        let mut order: Vec<usize> = (0..self.clusters.len()).collect();
        order.sort_by(|&a, &b| {
            self.clusters[b]
                .speed
                .partial_cmp(&self.clusters[a].speed)
                .expect("finite speeds")
                .then(a.cmp(&b))
        });
        for c in order {
            while let Some(&raw_len) = self.queue.front() {
                let len = self.scale(c, raw_len);
                // Conservative hole filling: the run must fit *now* without
                // touching any existing booking (local or BE).
                let Some((start, procs)) = self.clusters[c]
                    .full_tl
                    .earliest_slot_within(now, now, len, 1)
                else {
                    break; // this cluster has no hole right now
                };
                debug_assert_eq!(start, now);
                self.queue.pop_front();
                let end = now + len;
                let cl = &mut self.clusters[c];
                let bk = cl.full_tl.book(now, end, procs, BookingKind::BestEffort);
                let key = ctx.schedule_at(
                    end,
                    CigriEvent::BeEnd {
                        cluster: c,
                        booking: bk,
                    },
                );
                cl.be_running.insert(
                    bk,
                    BeRun {
                        len,
                        raw_len,
                        started: now,
                        end_event: key,
                    },
                );
            }
        }
        // Keep polling while work remains queued.
        if !self.queue.is_empty() {
            ctx.schedule_in(self.poll_period, CigriEvent::ServerPoll);
        } else {
            self.poll_scheduled = false;
        }
    }
}

impl Model for CigriSim {
    type Event = CigriEvent;

    fn handle(&mut self, now: Time, event: CigriEvent, ctx: &mut Ctx<'_, CigriEvent>) {
        match event {
            CigriEvent::LocalSubmit { cluster, job } => {
                ctx.trace(|| format!("cluster {cluster}: local submit {}", job.id));
                self.submit_local(now, cluster, job, ctx);
            }
            CigriEvent::LocalEnd { cluster, slot } => {
                self.finish_local(now, cluster, slot);
                // A hole just opened: wake the server if it was asleep (an
                // active periodic chain will notice the hole on its own).
                self.wake_server(now, ctx);
            }
            CigriEvent::BeEnd { cluster, booking } => {
                let cl = &mut self.clusters[cluster];
                if let Some(run) = cl.be_running.remove(&booking) {
                    cl.be_done += 1;
                    cl.be_busy += run.len;
                    cl.busy_total_ticks += run.len.ticks() as u128;
                    cl.full_tl.remove(booking);
                    let all_idle = self.clusters.iter().all(|c| c.be_running.is_empty());
                    if self.queue.is_empty() && all_idle {
                        self.campaign_done_at = self.campaign_done_at.max(now);
                    }
                }
                self.wake_server(now, ctx);
            }
            CigriEvent::CampaignSubmit(campaign) => {
                ctx.trace(|| {
                    format!(
                        "campaign {}: {} runs × {}",
                        campaign.id, campaign.n_runs, campaign.run_len
                    )
                });
                self.be_total += campaign.n_runs as u64;
                for _ in 0..campaign.n_runs {
                    self.queue.push_back(campaign.run_len);
                }
                self.wake_server(now, ctx);
            }
            CigriEvent::ServerPoll => {
                self.poll_scheduled = true;
                self.poll(now, ctx);
            }
        }
    }
}

/// Aggregated outcome of a CiGri simulation.
#[derive(Clone, Debug)]
pub struct CigriReport {
    /// §3 criteria over all completed local jobs.
    pub local: Option<Criteria>,
    /// Per-cluster utilization over `[0, horizon]` counting local + BE work.
    pub utilization: Vec<f64>,
    /// Per-cluster utilization counting local work only.
    pub local_utilization: Vec<f64>,
    /// Completed best-effort runs.
    pub be_completed: u64,
    /// Total best-effort runs submitted.
    pub be_submitted: u64,
    /// Best-effort runs killed by local jobs.
    pub kills: u64,
    /// CPU-seconds thrown away by kills.
    pub wasted_cpu_s: f64,
    /// When the campaign fully drained (ZERO if it never did).
    pub campaign_done_at: Time,
    /// The raw per-job records, for downstream analysis.
    pub local_records: Vec<CompletedJob>,
}

impl CigriSim {
    /// Extract the report after the simulation has run.
    pub fn report(&self, horizon: Time) -> CigriReport {
        let mut records = Vec::new();
        for cl in &self.clusters {
            records.extend(cl.completed.iter().cloned());
        }
        let local = if records.is_empty() {
            None
        } else {
            Some(Criteria::evaluate(&records))
        };
        // Busy accounting: accumulated finished work plus whatever is still
        // booked (the timelines are garbage-collected as work completes).
        let live_ticks = |tl: &Timeline| -> u128 {
            tl.bookings()
                .map(|(_, b)| {
                    let e = b.end.min(horizon);
                    if e > b.start {
                        (e - b.start).ticks() as u128 * b.procs.len() as u128
                    } else {
                        0
                    }
                })
                .sum()
        };
        let denom = |c: &ClusterState| -> f64 {
            c.full_tl.capacity().len() as f64 * horizon.ticks() as f64
        };
        let utilization = self
            .clusters
            .iter()
            .map(|c| {
                if horizon == Time::ZERO {
                    0.0
                } else {
                    (c.busy_total_ticks + live_ticks(&c.full_tl)) as f64 / denom(c)
                }
            })
            .collect();
        let local_utilization = self
            .clusters
            .iter()
            .map(|c| {
                if horizon == Time::ZERO {
                    0.0
                } else {
                    (c.busy_local_ticks + live_ticks(&c.local_tl)) as f64 / denom(c)
                }
            })
            .collect();
        CigriReport {
            local,
            utilization,
            local_utilization,
            be_completed: self.clusters.iter().map(|c| c.be_done).sum(),
            be_submitted: self.be_total,
            kills: self.clusters.iter().map(|c| c.kills).sum(),
            wasted_cpu_s: self.clusters.iter().map(|c| c.wasted.as_secs_f64()).sum(),
            campaign_done_at: self.campaign_done_at,
            local_records: records,
        }
    }
}

/// Run a full CiGri simulation: local jobs per cluster + campaigns, with or
/// without the best-effort server. Returns the report and the horizon used
/// for utilization (the last event time).
///
/// ```
/// use lsps_des::Dur;
/// use lsps_grid::cigri::run_cigri;
/// use lsps_platform::presets;
/// use lsps_workload::{Campaign, Job};
///
/// let platform = presets::ciment();
/// let locals = vec![(0, Job::sequential(1, Dur::from_secs(100)))];
/// let campaign = Campaign::new(1, 50, Dur::from_secs(10));
/// let report = run_cigri(&platform, locals, vec![campaign], Dur::from_secs(5), true);
/// assert_eq!(report.be_completed, 50);
/// assert_eq!(report.local.unwrap().n, 1);
/// ```
pub fn run_cigri(
    platform: &Platform,
    locals: Vec<(usize, Job)>,
    campaigns: Vec<Campaign>,
    poll_period: Dur,
    best_effort: bool,
) -> CigriReport {
    let mut sim = Simulation::new(CigriSim::new(platform, poll_period, best_effort));
    for (cluster, job) in locals {
        let at = job.release;
        sim.schedule_at(at, CigriEvent::LocalSubmit { cluster, job });
    }
    for c in campaigns {
        let at = c.release;
        sim.schedule_at(at, CigriEvent::CampaignSubmit(c));
    }
    let stats = sim.run_to_completion(20_000_000);
    let horizon = stats.last_event_time;
    sim.model().report(horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_platform::presets;

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }
    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }

    fn two_cluster_platform() -> Platform {
        use lsps_platform::{Cluster, LinkClass, NetworkModel};
        Platform::new(
            "test",
            vec![
                Cluster::homogeneous("a", 2, 1, 1.0, LinkClass::gige()),
                Cluster::homogeneous("b", 2, 1, 0.5, LinkClass::eth100()),
            ],
            NetworkModel::light_grid_default(),
        )
    }

    #[test]
    fn locals_alone_complete() {
        let p = two_cluster_platform();
        let locals = vec![
            (0, Job::sequential(1, d(100))),
            (0, Job::sequential(2, d(100))),
            (1, Job::sequential(3, d(100))),
        ];
        let report = run_cigri(&p, locals, vec![], d(50), true);
        let crit = report.local.expect("three locals completed");
        assert_eq!(crit.n, 3);
        // Cluster b runs at half speed: job 3 takes 200 ticks.
        assert!((crit.cmax - 0.2).abs() < 1e-9, "cmax {}", crit.cmax);
        assert_eq!(report.kills, 0);
        assert_eq!(report.be_completed, 0);
    }

    #[test]
    fn campaign_fills_idle_grid() {
        let p = two_cluster_platform();
        let c = Campaign::new(1, 10, d(100));
        let report = run_cigri(&p, vec![], vec![c], d(10), true);
        assert_eq!(report.be_completed, 10);
        assert_eq!(report.kills, 0);
        assert!(report.campaign_done_at > Time::ZERO);
        // 4 procs (2 fast + 2 half-speed): 10 runs of 100 (fast) / 200
        // (slow) must drain in well under serial time.
        assert!(report.campaign_done_at < t(10 * 100));
    }

    #[test]
    fn best_effort_disabled_leaves_campaign_queued() {
        let p = two_cluster_platform();
        let c = Campaign::new(1, 10, d(100));
        let report = run_cigri(&p, vec![], vec![c], d(10), false);
        assert_eq!(report.be_completed, 0);
        assert_eq!(report.be_submitted, 10);
    }

    #[test]
    fn local_arrival_kills_best_effort_and_requeues() {
        // One 1-proc cluster. BE run of 1000 starts at 0; a local job
        // arrives at 100 → the run dies, the local starts immediately, the
        // run restarts after.
        use lsps_platform::{Cluster, LinkClass, NetworkModel};
        let p = Platform::new(
            "one",
            vec![Cluster::homogeneous("c", 1, 1, 1.0, LinkClass::gige())],
            NetworkModel::light_grid_default(),
        );
        let locals = vec![(0, Job::sequential(1, d(500)).released_at(t(100)))];
        let c = Campaign::new(1, 1, d(1000));
        let report = run_cigri(&p, locals, vec![c], d(50), true);
        assert_eq!(report.kills, 1, "the BE run was killed");
        assert_eq!(report.be_completed, 1, "and later completed");
        let crit = report.local.unwrap();
        // Local started at its release — undisturbed by the BE run.
        assert!(
            (crit.mean_flow - 0.5).abs() < 1e-9,
            "flow {}",
            crit.mean_flow
        );
        // Wasted work: the run consumed [0, 100) before dying.
        assert!((report.wasted_cpu_s - 0.1).abs() < 1e-9);
        // Full timeline: local 500 + killed BE 100 + full rerun 1000.
        assert_eq!(report.campaign_done_at, t(1600));
    }

    #[test]
    fn locals_never_disturbed_by_best_effort() {
        // The paper's central claim: local metrics identical with and
        // without the grid layer.
        let p = two_cluster_platform();
        let mk_locals = || {
            vec![
                (0, Job::sequential(1, d(300))),
                (0, Job::sequential(2, d(200)).released_at(t(50))),
                (0, Job::sequential(3, d(100)).released_at(t(120))),
                (1, Job::sequential(4, d(400)).released_at(t(10))),
            ]
        };
        let with_grid = run_cigri(
            &p,
            mk_locals(),
            vec![Campaign::new(1, 200, d(77))],
            d(13),
            true,
        );
        let without = run_cigri(&p, mk_locals(), vec![], d(13), true);
        let a = with_grid.local.unwrap();
        let b = without.local.unwrap();
        assert_eq!(a.n, b.n);
        assert!((a.cmax - b.cmax).abs() < 1e-9);
        assert!((a.mean_flow - b.mean_flow).abs() < 1e-9);
        assert!((a.sum_completion - b.sum_completion).abs() < 1e-9);
        // And the grid actually used the idle capacity.
        assert!(with_grid.be_completed > 0);
    }

    #[test]
    fn utilization_rises_with_best_effort() {
        let p = two_cluster_platform();
        let locals = vec![
            (0, Job::sequential(1, d(500))),
            (1, Job::sequential(2, d(500))),
        ];
        let campaign = Campaign::new(1, 100, d(60));
        let with_be = run_cigri(&p, locals.clone(), vec![campaign], d(10), true);
        let without = run_cigri(&p, locals, vec![], d(10), true);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&with_be.utilization) > mean(&without.utilization),
            "BE must raise utilization: {} vs {}",
            mean(&with_be.utilization),
            mean(&without.utilization)
        );
        // Accounting stays consistent.
        assert!(with_be.be_completed <= with_be.be_submitted);
        assert_eq!(with_be.be_completed, 100);
    }

    #[test]
    fn custom_local_policy_runs_and_unsuitable_ones_are_rejected() {
        use lsps_core::policy::BatchedMrt;
        // EASY backfilling honours pinned bookings: accepted, and a busy
        // cluster (overlapping concurrent locals) simulates fine.
        let p = two_cluster_platform();
        let locals = vec![
            (0, Job::sequential(1, d(300))),
            (0, Job::sequential(2, d(200)).released_at(t(10))),
            (0, Job::sequential(3, d(100)).released_at(t(20))),
        ];
        let mut sim = Simulation::new(
            CigriSim::new(&p, d(50), true).with_local_policy(Box::new(Backfilling::easy())),
        );
        for (cluster, job) in locals {
            let at = job.release;
            sim.schedule_at(at, CigriEvent::LocalSubmit { cluster, job });
        }
        sim.run_to_completion(10_000);
        let report = sim.model().report(sim.now());
        assert_eq!(report.local.expect("locals completed").n, 3);
        // A batch policy cannot serve overlapping pinned bookings.
        let rejected = std::panic::catch_unwind(|| {
            CigriSim::new(&p, d(50), true).with_local_policy(Box::new(BatchedMrt::default()))
        });
        assert!(rejected.is_err(), "batch-mrt must be rejected up front");
    }

    #[test]
    fn poll_gc_bounds_dead_bookings_without_losing_utilization() {
        // A long trace with many server cycles between local completions:
        // the per-poll gc must keep the timelines free of dead bookings
        // mid-run, and the report's utilization must still balance exactly
        // (every finished proc-tick accounted before its booking is
        // collectable). One cluster at speed 1.0 keeps the arithmetic in
        // raw ticks.
        use lsps_platform::{Cluster, LinkClass, NetworkModel};
        let p = Platform::new(
            "one",
            vec![Cluster::homogeneous("c", 2, 1, 1.0, LinkClass::gige())],
            NetworkModel::light_grid_default(),
        );
        let locals = vec![
            (0, Job::sequential(1, d(100))),
            (0, Job::sequential(2, d(80)).released_at(t(700))),
        ];
        let run_len = 60u64;
        let n_runs = 8usize;
        let mut sim = Simulation::new(CigriSim::new(&p, d(10), true));
        for (cluster, job) in locals {
            let at = job.release;
            sim.schedule_at(at, CigriEvent::LocalSubmit { cluster, job });
        }
        sim.schedule_at(
            Time::ZERO,
            CigriEvent::CampaignSubmit(Campaign::new(1, n_runs, d(run_len))),
        );
        let mut max_bookings = 0usize;
        while sim.step() {
            let cl = &sim.model().clusters[0];
            max_bookings = max_bookings
                .max(cl.local_tl.n_bookings())
                .max(cl.full_tl.n_bookings());
        }
        let horizon = sim.now();
        let report = sim.model().report(horizon);
        // Mid-run the timelines never hold more than the work that can be
        // live at once (2 procs: 2 local + 2 BE bookings, plus one being
        // placed) — dead bookings are collected by the poll cycles even
        // while no local job completes for hundreds of ticks.
        assert!(max_bookings <= 5, "dead bookings piled up: {max_bookings}");
        let cl = &sim.model().clusters[0];
        assert_eq!(cl.local_tl.n_bookings(), 0, "everything collected");
        assert_eq!(cl.full_tl.n_bookings(), 0);
        // Exact accounting identity: utilization ≈ (local + BE + wasted)
        // proc-ticks over the 2 × horizon rectangle.
        assert_eq!(report.be_completed, n_runs as u64);
        let local_ticks: u64 = report
            .local_records
            .iter()
            .map(|r| (r.completion - r.start).ticks() * r.procs as u64)
            .sum();
        let be_ticks = n_runs as u64 * run_len + (report.wasted_cpu_s * 1000.0).round() as u64;
        let expected = (local_ticks + be_ticks) as f64 / (2 * horizon.ticks()) as f64;
        assert!(
            (report.utilization[0] - expected).abs() < 1e-9,
            "utilization {} vs accounted {expected}",
            report.utilization[0]
        );
    }

    #[test]
    fn ciment_preset_smoke() {
        let p = presets::ciment();
        let locals = vec![
            (0, Job::rigid(1, 8, d(1000))),
            (1, Job::rigid(2, 4, d(800)).released_at(t(100))),
            (2, Job::sequential(3, d(2000))),
        ];
        let report = run_cigri(&p, locals, vec![Campaign::new(1, 500, d(50))], d(20), true);
        assert_eq!(report.local.as_ref().unwrap().n, 3);
        assert_eq!(report.be_completed, 500);
        assert_eq!(report.utilization.len(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use lsps_platform::{Cluster, LinkClass, NetworkModel};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// The paper's central §5.2 claim as a property: for ANY local
        /// workload and ANY campaign, enabling the best-effort layer leaves
        /// every local job's record bit-identical, completes runs only up
        /// to what was submitted, and never loses a run (completed +
        /// still-queued-or-running = submitted; here everything drains).
        #[test]
        fn locals_never_disturbed_under_any_campaign(
            locals in prop::collection::vec(
                (0usize..2, 1usize..3, 1u64..400, 0u64..600), 1..16),
            n_runs in 1usize..40,
            run_len in 1u64..300,
            poll in 1u64..100,
        ) {
            let platform = Platform::new(
                "prop",
                vec![
                    Cluster::homogeneous("a", 3, 1, 1.0, LinkClass::gige()),
                    Cluster::homogeneous("b", 2, 1, 0.5, LinkClass::eth100()),
                ],
                NetworkModel::light_grid_default(),
            );
            let jobs: Vec<(usize, Job)> = locals.iter().enumerate()
                .map(|(i, &(c, q, len, rel))| {
                    let q = q.min(platform.clusters[c].total_procs());
                    (c, Job::rigid(i as u64, q, Dur::from_ticks(len))
                        .released_at(Time::from_ticks(rel)))
                })
                .collect();
            let campaign = Campaign::new(1, n_runs, Dur::from_ticks(run_len));
            let with = run_cigri(
                &platform, jobs.clone(), vec![campaign], Dur::from_ticks(poll), true);
            let without = run_cigri(
                &platform, jobs, vec![], Dur::from_ticks(poll), true);
            // Bit-identical local outcomes.
            prop_assert_eq!(&with.local_records, &without.local_records);
            // The campaign fully drains and accounting balances.
            prop_assert_eq!(with.be_completed, n_runs as u64);
            prop_assert_eq!(with.be_submitted, n_runs as u64);
            prop_assert!(with.wasted_cpu_s >= 0.0);
            // Kills can only have happened if locals exist.
            if with.kills > 0 {
                prop_assert!(!with.local_records.is_empty());
            }
        }
    }
}
