//! "Which policy for which application?" — the paper's question, answered
//! for every cell of the (application × objective) matrix, and made
//! runnable: each recommendation is instantiated into the `Policy` object
//! the experiment runner would execute.
//!
//! ```sh
//! cargo run --example policy_advisor
//! ```

use lsps::prelude::*;

fn main() {
    let apps = [
        Application::SequentialBag,
        Application::RigidParallel,
        Application::Moldable,
        Application::DivisibleLoad,
    ];
    let objectives = [
        Objective::Makespan,
        Objective::WeightedCompletion,
        Objective::BiCriteria,
        Objective::Throughput,
        Objective::GridFairness,
    ];
    for app in apps {
        println!("== {app:?}");
        for obj in objectives {
            let r = advise(app, obj, true);
            let g = r
                .guarantee
                .map(|g| format!(" [ratio {g}]"))
                .unwrap_or_default();
            let runnable = r
                .policy
                .instantiate()
                .map(|p| format!("registry `{}`", p.name()))
                .unwrap_or_else(|| "event-driven layer (lsps-dlt / lsps-grid)".into());
            println!("  {obj:?} -> {:?}{g}  ({runnable})", r.policy);
            println!("      {}", r.rationale);
        }
        println!();
    }

    // The recommendations are not just labels: run the moldable-makespan
    // pick on a small workload right here.
    let rec = advise(Application::Moldable, Objective::Makespan, true);
    let policy = rec.policy.instantiate().expect("PT recommendation");
    let mut rng = SimRng::seed_from(1);
    let jobs = WorkloadSpec::fig2_parallel(40).generate(32, &mut rng);
    let run = policy.run(&jobs, 32, &PolicyCtx::default());
    run.validate().expect("valid schedule");
    let crit = Criteria::evaluate(&run.schedule.completed(&run.jobs));
    println!(
        "ran `{}` on 40 moldable jobs / 32 procs: Cmax {:.1}s, mean flow {:.1}s",
        policy.name(),
        crit.cmax,
        crit.mean_flow
    );
}
