//! Offline shim for `serde_json`: prints and parses JSON against the local
//! `serde` shim's value model. Numbers round-trip exactly (`u64`/`i64`
//! verbatim, `f64` via the shortest-roundtrip `{:?}` form); strings support
//! the standard escapes.

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(|e| Error(e.to_string()))
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null"); // JSON has no NaN/inf, same as serde_json
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // reject them rather than decode incorrectly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error("unsupported \\u escape".into()))?;
                            out.push(c);
                        }
                        other => return Err(Error(format!("bad escape \\{}", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::UInt(n))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::Int(n))
        } else {
            // Integer out of 64-bit range: fall back to float like serde_json
            // does for arbitrary precision disabled.
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<f64>("3.0").unwrap(), 3.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\n\\\"b\\\"\"").unwrap(), "a\n\"b\"");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
        let o: Option<u64> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_print_shape() {
        let v = vec![1u64];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1\n]");
    }

    #[test]
    fn f64_shortest_roundtrip() {
        for x in [0.1f64, 1e-9, 123456.789, 2.5, 1.0 / 3.0] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"oops").is_err());
    }
}
