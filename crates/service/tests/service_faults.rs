//! Worker-protocol fault injection: first-generation workers are
//! sabotaged through `LSPS_WORKER_FAULT` (crash mid-campaign, hang past
//! the cell timeout) and the daemon must reassign their cells, finish the
//! campaign, and still produce the exact bytes of an in-process run —
//! crash recovery must be invisible in the output.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use lsps_scenario::{run_campaign, CampaignOptions, CampaignSpec};
use lsps_service::daemon::config_under;
use lsps_service::Daemon;

fn examples_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples")
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lsps-faults-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp root");
    dir
}

fn wait_complete(daemon: &Daemon, id: &str, deadline: Duration) -> String {
    let start = Instant::now();
    loop {
        let status = daemon.status_json(id).expect("submitted campaign");
        if status.contains("\"complete\":true") {
            return status;
        }
        assert!(
            start.elapsed() < deadline,
            "campaign {id} did not complete in {deadline:?}: {status}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Run `outcomes_campaign.json` under an injected worker fault and assert
/// the daemon still emits the in-process bytes with zero failed cells.
fn survives_fault(fault: &str, cell_timeout: Duration, tag: &str) {
    let spec_text =
        fs::read_to_string(examples_dir().join("outcomes_campaign.json")).expect("example spec");
    let spec: CampaignSpec = serde_json::from_str(&spec_text).expect("spec parses");
    let reference = run_campaign(
        &spec,
        &CampaignOptions {
            cache_dir: None,
            threads: 0,
            base_dir: Some(examples_dir()),
        },
    )
    .expect("in-process run");

    let root = temp_root(tag);
    let mut cfg = config_under(&root, env!("CARGO_BIN_EXE_lsps-worker"));
    cfg.workers = 2;
    cfg.base_dir = Some(examples_dir());
    cfg.cell_timeout = cell_timeout;
    // Every first-generation worker carries the fault; respawns run clean
    // (that is the daemon's contract, and what lets the campaign finish).
    cfg.worker_env = vec![("LSPS_WORKER_FAULT".into(), fault.into())];

    let daemon = Daemon::start(cfg).expect("daemon starts");
    let id = daemon.submit(&spec_text).expect("spec accepted");
    let status = wait_complete(&daemon, &id, Duration::from_secs(300));
    assert!(
        status.contains("\"failed\":0"),
        "no cell may end up failed: {status}"
    );
    // The status JSON surfaces fleet health: recovering from the fault
    // means at least one worker was respawned, and that shows up.
    let respawns: u64 = status
        .split("\"worker_respawns\":")
        .nth(1)
        .and_then(|r| r.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("status carries worker_respawns: {status}"));
    assert!(respawns >= 1, "fault recovery implies a respawn: {status}");
    let (raw, agg) = daemon.csvs(&id).expect("complete campaign has CSVs");
    assert_eq!(raw, reference.raw_csv, "raw CSV differs after {fault}");
    assert_eq!(
        agg, reference.aggregate_csv,
        "aggregate CSV differs after {fault}"
    );
    daemon.shutdown();
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn worker_crash_mid_campaign_is_recovered() {
    // Both first-generation workers exit right before their 3rd cell:
    // in-flight work is requeued onto the clean respawns.
    survives_fault("crash:3", Duration::from_secs(120), "crash");
}

#[test]
fn worker_hang_past_cell_timeout_is_recovered() {
    // Both first-generation workers wedge before their 2nd cell; the
    // supervisor must notice the stalled in-flight queue, kill them, and
    // reassign. The tight timeout keeps the test fast.
    survives_fault("hang:2", Duration::from_secs(2), "hang");
}
