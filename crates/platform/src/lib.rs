//! # lsps-platform — the execution-support model
//!
//! The paper (§1.2) targets a *light grid*: "a few clusters composed each by
//! a collection of a medium number of SMP or simple PC machines", highly
//! heterogeneous **between** clusters, weakly heterogeneous **inside** each
//! cluster, with a fast, possibly hierarchical interconnect and submission
//! through per-cluster queues.
//!
//! This crate models exactly that:
//!
//! * [`ProcSet`] — a compact bitset of processor indices; every allocation in
//!   the workspace is a `ProcSet`, which makes schedule-validity checking
//!   exact (two assignments conflict iff their sets intersect and their time
//!   windows overlap).
//! * [`Node`], [`Cluster`], [`Platform`] — the machine hierarchy of Fig. 1 /
//!   Fig. 3 with per-node relative speeds (weak intra-cluster heterogeneity)
//!   and per-cluster interconnect classes.
//! * [`LinkClass`], [`NetworkModel`] — latency + bandwidth affine transfer
//!   costs at the three levels of the hierarchy (intra-node, intra-cluster,
//!   inter-cluster).
//! * [`Timeline`] — per-processor availability over time: bookings, advance
//!   reservations (§5.1), hole queries. This is the substrate both for
//!   backfilling policies and for the CiGri best-effort hole-filling (§5.2).
//! * [`presets`] — ready-made platforms, including the four CIMENT clusters
//!   of Fig. 3 and the 225-PC IMAG cluster mentioned in §1.1.

pub mod network;
pub mod presets;
pub mod procset;
pub mod spec;
pub mod timeline;

pub use network::{LinkClass, NetworkModel};
pub use procset::{ProcId, ProcSet};
pub use spec::{Cluster, Node, Platform};
pub use timeline::{Booking, BookingId, BookingKind, Timeline};

/// Commonly used items.
pub mod prelude {
    pub use crate::network::{LinkClass, NetworkModel};
    pub use crate::presets;
    pub use crate::procset::{ProcId, ProcSet};
    pub use crate::spec::{Cluster, Node, Platform};
    pub use crate::timeline::{Booking, BookingId, BookingKind, Timeline};
}
