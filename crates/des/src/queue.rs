//! Stable, cancellable event queue.
//!
//! A 4-ary implicit min-heap keyed by `(Time, sequence)`: events scheduled
//! for the same instant pop in the order they were scheduled, which keeps
//! every simulation in the workspace deterministic. Event payloads live in a
//! generation-stamped slot slab beside the heap, so schedule, pop and cancel
//! all run without hashing: a key names a slot plus the generation it was
//! issued under, and a stale key simply fails the generation check.
//!
//! Cancellation is O(1) — the slot is vacated immediately (payload dropped,
//! generation bumped) and the heap entry left behind as a tombstone that is
//! discarded when it surfaces. Tombstones are *not* allowed to accumulate:
//! whenever dead entries exceed half the heap, the queue compacts in place
//! (retain the live entries, rebuild the heap bottom-up, O(n)), so heap
//! occupancy stays ≥ 50% live and memory stays proportional to live events
//! even under cancel-heavy workloads. See [`EventQueue::heap_len`] /
//! [`EventQueue::occupancy`] for the live/dead accounting.

use crate::time::Time;

/// Children of heap node `i` start at `4 * i + 1` — a 4-ary heap trades a
/// few extra comparisons per level for half the depth (and half the cache
/// misses on sift-down) of a binary heap.
const ARITY: usize = 4;

/// Opaque handle to a scheduled event, used for cancellation.
///
/// Packs `(generation << 32) | slot`: a key outlives its event harmlessly —
/// once the event pops or cancels, the slot's generation moves on and the
/// old key no longer matches.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

impl EventKey {
    fn new(slot: u32, generation: u32) -> Self {
        EventKey((u64::from(generation) << 32) | u64::from(slot))
    }

    fn slot(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Heap entries carry the ordering key and the slot of their payload; they
/// are plain `Copy` words, so sift operations move 24 bytes, never an `E`.
#[derive(Copy, Clone)]
struct HeapEntry {
    at: Time,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn precedes(&self, other: &HeapEntry) -> bool {
        (self.at, self.seq) < (other.at, other.seq)
    }
}

/// One slab slot: the payload of a live event, stamped with the sequence
/// number its heap entry carries (a mismatch marks the entry as a tombstone)
/// and a generation counter that invalidates old [`EventKey`]s on reuse.
struct Slot<E> {
    generation: u32,
    /// `Some((seq, event))` while the event is live; `None` once popped or
    /// cancelled (the slot is then on the free list).
    occupant: Option<(u64, E)>,
}

/// Priority queue of timestamped events with FIFO tie-breaking and O(1)
/// cancellation, no hashing on any path.
pub struct EventQueue<E> {
    heap: Vec<HeapEntry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
    /// Heap entries whose slot no longer holds their sequence number
    /// (cancelled events awaiting discard or compaction).
    dead: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            dead: 0,
        }
    }

    /// Schedule `event` at absolute time `at`; returns a key usable with
    /// [`cancel`](Self::cancel).
    pub fn schedule(&mut self, at: Time, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].occupant = Some((seq, event));
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("fewer than 2^32 live events");
                self.slots.push(Slot {
                    generation: 0,
                    occupant: Some((seq, event)),
                });
                slot
            }
        };
        self.heap.push(HeapEntry { at, seq, slot });
        self.sift_up(self.heap.len() - 1);
        EventKey::new(slot, self.slots[slot as usize].generation)
    }

    /// Cancel a previously scheduled event. Returns `true` if the key was
    /// still live (i.e. not yet popped or cancelled).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let idx = key.slot();
        let Some(slot) = self.slots.get_mut(idx) else {
            return false;
        };
        if slot.generation != key.generation() || slot.occupant.is_none() {
            return false;
        }
        // Vacate now — the payload drops immediately; only the 24-byte heap
        // entry lingers as a tombstone.
        slot.occupant = None;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(idx as u32);
        self.dead += 1;
        if self.dead > self.heap.len() / 2 {
            self.compact();
        }
        true
    }

    /// Remove and return the earliest live event as `(time, key, event)`.
    pub fn pop(&mut self) -> Option<(Time, EventKey, E)> {
        loop {
            let entry = self.pop_heap()?;
            let idx = entry.slot as usize;
            let slot = &mut self.slots[idx];
            match slot.occupant {
                Some((seq, _)) if seq == entry.seq => {
                    let (_, event) = slot.occupant.take().expect("just matched");
                    let key = EventKey::new(entry.slot, slot.generation);
                    slot.generation = slot.generation.wrapping_add(1);
                    self.free.push(entry.slot);
                    return Some((entry.at, key, event));
                }
                // Tombstone: the slot was cancelled (and possibly reused by
                // a later event with a different seq). Discard and retry.
                _ => self.dead -= 1,
            }
        }
    }

    /// Timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        // Purge tombstone heads so the answer is accurate.
        while let Some(head) = self.heap.first() {
            let slot = &self.slots[head.slot as usize];
            match slot.occupant {
                Some((seq, _)) if seq == head.seq => return Some(head.at),
                _ => {
                    self.pop_heap();
                    self.dead -= 1;
                }
            }
        }
        None
    }

    /// Number of live events (cancelled-but-undiscarded entries excluded).
    pub fn len(&self) -> usize {
        self.heap.len() - self.dead
    }

    /// True iff no live event remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total heap entries, tombstones included — the queue's real footprint.
    /// Compaction bounds this at `2 * len()`, so it can exceed [`len`](Self::len)
    /// by at most the live count.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Fraction of heap entries that are live, in `(0.5, 1.0]`; `1.0` for an
    /// empty queue. A health metric: values near `0.5` mean the workload is
    /// cancel-heavy and compactions are frequent.
    pub fn occupancy(&self) -> f64 {
        if self.heap.is_empty() {
            1.0
        } else {
            self.len() as f64 / self.heap.len() as f64
        }
    }

    /// Drop every pending event. Outstanding keys are invalidated (their
    /// slots' generations advance), so a key from before `clear` can never
    /// cancel an event scheduled after it.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.dead = 0;
        self.free.clear();
        for (idx, slot) in self.slots.iter_mut().enumerate() {
            if slot.occupant.take().is_some() {
                slot.generation = slot.generation.wrapping_add(1);
            }
            self.free.push(idx as u32);
        }
    }

    /// Drop every tombstone: retain live heap entries in place, then rebuild
    /// the heap invariant bottom-up (Floyd, O(n)). Called whenever dead
    /// entries outnumber live ones, so the amortized cost per cancel is O(1)
    /// sift work plus the O(1) vacate already paid.
    fn compact(&mut self) {
        let slots = &self.slots;
        self.heap.retain(|entry| {
            matches!(slots[entry.slot as usize].occupant, Some((seq, _)) if seq == entry.seq)
        });
        self.dead = 0;
        for i in (0..self.heap.len() / ARITY + 1).rev() {
            self.sift_down(i);
        }
    }

    /// Remove and return the heap minimum (tombstone or not).
    fn pop_heap(&mut self) -> Option<HeapEntry> {
        let last = self.heap.pop()?;
        if self.heap.is_empty() {
            return Some(last);
        }
        let min = std::mem::replace(&mut self.heap[0], last);
        self.sift_down(0);
        Some(min)
    }

    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if entry.precedes(&self.heap[parent]) {
                self.heap[i] = self.heap[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = entry;
    }

    fn sift_down(&mut self, mut i: usize) {
        let len = self.heap.len();
        if i >= len {
            return;
        }
        let entry = self.heap[i];
        loop {
            let first = i * ARITY + 1;
            if first >= len {
                break;
            }
            let mut best = first;
            for child in first + 1..(first + ARITY).min(len) {
                if self.heap[child].precedes(&self.heap[best]) {
                    best = child;
                }
            }
            if self.heap[best].precedes(&entry) {
                self.heap[i] = self.heap[best];
                i = best;
            } else {
                break;
            }
        }
        self.heap[i] = entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let _a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        let c = q.schedule(t(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel reports false");
        assert_eq!(q.len(), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, vec!["a", "c"]);
        assert!(!q.cancel(c), "cancelling an already-popped key is a no-op");
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventKey(42)));
    }

    #[test]
    fn pop_returns_the_schedule_key() {
        let mut q = EventQueue::new();
        let k = q.schedule(t(3), "x");
        let (_, popped, _) = q.pop().unwrap();
        assert_eq!(popped, k, "pop reports the key schedule handed out");
    }

    #[test]
    fn stale_key_cannot_cancel_a_reused_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        assert!(q.cancel(a));
        // The freed slot is reused for "b"; the stale key must not touch it.
        let b = q.schedule(t(2), "b");
        assert!(!q.cancel(a), "stale key fails the generation check");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, k, e)| (k, e)), Some((b, "b")));
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(5), "b");
        assert_eq!(q.peek_time(), Some(t(1)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(5)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
        q.schedule(t(1), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clear_invalidates_outstanding_keys() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.clear();
        let b = q.schedule(t(2), "b");
        assert!(
            !q.cancel(a),
            "pre-clear key is dead even if its slot was reused"
        );
        assert!(q.cancel(b));
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        let (at, _, e) = q.pop().unwrap();
        assert_eq!((at, e), (t(10), 1));
        q.schedule(t(5), 2); // scheduling "in the past" is the caller's business
        q.schedule(t(7), 3);
        assert_eq!(q.pop().unwrap().2, 2);
        assert_eq!(q.pop().unwrap().2, 3);
    }

    #[test]
    fn compaction_bounds_tombstones() {
        let mut q = EventQueue::new();
        let keys: Vec<_> = (0..1000).map(|i| q.schedule(t(i), i)).collect();
        // Cancel everything but the last: compactions must keep the heap at
        // most half dead throughout, and the survivor still pops.
        for k in &keys[..999] {
            assert!(q.cancel(*k));
        }
        assert_eq!(q.len(), 1);
        assert!(
            q.heap_len() <= 2 * q.len().max(1),
            "heap holds {} entries for 1 live event",
            q.heap_len()
        );
        assert!(q.occupancy() >= 0.5);
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(999));
        assert!(q.is_empty());
        assert_eq!(q.occupancy(), 1.0);
    }

    #[test]
    fn heap_len_counts_tombstones_until_compaction() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.schedule(t(3), "c");
        q.cancel(a); // 1 dead of 3 — below the compaction threshold
        assert_eq!(q.len(), 2);
        assert_eq!(q.heap_len(), 3);
        assert!((q.occupancy() - 2.0 / 3.0).abs() < 1e-12);
    }
}
