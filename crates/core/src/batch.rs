//! On-line batch scheduling (§4.2 of the paper; ref \[17\] Shmoys, Wein,
//! Williamson).
//!
//! "The jobs are gathered into sets (called batches) that are scheduled
//! together. All further arriving tasks are delayed to be considered in the
//! next batch. […] an algorithm for scheduling independent tasks without
//! release dates with a performance ratio of ρ \[becomes\] a batch scheduling
//! algorithm with unknown release dates with a performance ratio of 2ρ."
//!
//! [`batch_online`] is that transformation, generic over the off-line
//! procedure. Combined with [`crate::mrt`] it yields the paper's
//! "3 + ε for Cmax with release dates" algorithm.

use lsps_des::Time;
use lsps_workload::Job;

use crate::backfill::Reservation;
use crate::schedule::Schedule;

/// Run the Shmoys batch transformation: replay releases, and whenever the
/// machine falls idle with jobs waiting, hand every released-but-unscheduled
/// job (with its release date zeroed) to `offline` and append the resulting
/// schedule.
///
/// `offline(jobs, m)` must return a schedule of exactly `jobs` all released
/// at zero; its makespan positions the next batch boundary.
pub fn batch_online<F>(jobs: &[Job], m: usize, mut offline: F) -> Schedule
where
    F: FnMut(&[Job], usize) -> Schedule,
{
    let mut pending: Vec<&Job> = jobs.iter().collect();
    pending.sort_by_key(|j| (j.release, j.id));
    let mut sched = Schedule::new(m);
    let mut i = 0usize;
    // The first batch opens at the earliest release.
    let mut boundary = pending.first().map(|j| j.release).unwrap_or(Time::ZERO);
    while i < pending.len() {
        if pending[i].release > boundary {
            // Idle gap: jump to the next arrival.
            boundary = pending[i].release;
        }
        // Collect the batch: everything released by the boundary.
        let mut batch: Vec<Job> = Vec::new();
        while i < pending.len() && pending[i].release <= boundary {
            let mut job = pending[i].clone();
            job.release = Time::ZERO;
            batch.push(job);
            i += 1;
        }
        let sub = offline(&batch, m);
        assert_eq!(
            sub.len(),
            batch.len(),
            "offline procedure must schedule the whole batch"
        );
        let span = sub.makespan().since_epoch();
        sched.extend(sub.shifted(boundary.since_epoch()));
        boundary += span;
    }
    sched
}

/// Batch scheduling around advance reservations (§5.1).
///
/// "A batch algorithm could try to ensure that batch boundaries match the
/// beginning and the end of the reservations, but that would likely be
/// inefficient." — this function implements exactly that idea so the
/// inefficiency can be *measured* (see the `reservations` test and the
/// `models_compare` discussion): reservations are treated as full-machine
/// blackout windows; a batch whose off-line schedule would cross the next
/// blackout is deferred past it.
///
/// Reservations must be pairwise disjoint in time.
pub fn batch_online_avoiding<F>(
    jobs: &[Job],
    m: usize,
    reservations: &[Reservation],
    mut offline: F,
) -> Schedule
where
    F: FnMut(&[Job], usize) -> Schedule,
{
    let mut windows: Vec<(Time, Time)> = reservations.iter().map(|r| (r.start, r.end)).collect();
    windows.sort_unstable();
    for w in windows.windows(2) {
        assert!(w[0].1 <= w[1].0, "reservations must not overlap in time");
    }
    let mut pending: Vec<&Job> = jobs.iter().collect();
    pending.sort_by_key(|j| (j.release, j.id));
    let mut sched = Schedule::new(m);
    let mut i = 0usize;
    let mut boundary = pending.first().map(|j| j.release).unwrap_or(Time::ZERO);
    while i < pending.len() {
        if pending[i].release > boundary {
            boundary = pending[i].release;
        }
        // Never start a batch inside a blackout window.
        for &(ws, we) in &windows {
            if boundary >= ws && boundary < we {
                boundary = we;
            }
        }
        let mut batch: Vec<Job> = Vec::new();
        while i < pending.len() && pending[i].release <= boundary {
            let mut job = pending[i].clone();
            job.release = Time::ZERO;
            batch.push(job);
            i += 1;
        }
        let sub = offline(&batch, m);
        assert_eq!(sub.len(), batch.len(), "offline must schedule the batch");
        let span = sub.makespan().since_epoch();
        // If the batch would cross a blackout, defer it entirely past the
        // window — the aligned-boundaries idea, priced honestly. Loop: the
        // deferred position may run into the following window.
        loop {
            let crossing = windows
                .iter()
                .find(|&&(ws, we)| boundary < we && boundary + span > ws)
                .copied();
            match crossing {
                Some((_, we)) => boundary = we,
                None => break,
            }
        }
        sched.extend(sub.shifted(boundary.since_epoch()));
        boundary += span;
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{list_schedule, JobOrder};
    use crate::mrt::{mrt_schedule, MrtParams};
    use lsps_des::{Dur, SimRng};
    use lsps_metrics::cmax_lower_bound;
    use lsps_workload::{JobId, MoldableProfile, SpeedupModel};

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }
    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }

    #[test]
    fn batches_form_at_boundaries() {
        // j1 at 0 (runs 10), j2 arrives at 3 → must wait for batch 2 at 10.
        let jobs = vec![
            Job::sequential(1, d(10)),
            Job::sequential(2, d(5)).released_at(t(3)),
        ];
        let s = batch_online(&jobs, 1, |b, m| list_schedule(b, m, JobOrder::Fcfs));
        assert!(s.validate(&jobs).is_ok());
        let start2 = s
            .assignments()
            .iter()
            .find(|a| a.job == JobId(2))
            .unwrap()
            .start;
        assert_eq!(start2, t(10), "delayed to the next batch");
    }

    #[test]
    fn idle_gaps_are_skipped() {
        let jobs = vec![
            Job::sequential(1, d(5)),
            Job::sequential(2, d(5)).released_at(t(100)),
        ];
        let s = batch_online(&jobs, 2, |b, m| list_schedule(b, m, JobOrder::Fcfs));
        assert!(s.validate(&jobs).is_ok());
        let start2 = s
            .assignments()
            .iter()
            .find(|a| a.job == JobId(2))
            .unwrap()
            .start;
        assert_eq!(start2, t(100), "batch opens at the late arrival");
    }

    #[test]
    fn first_release_nonzero() {
        let jobs = vec![Job::sequential(1, d(5)).released_at(t(42))];
        let s = batch_online(&jobs, 1, |b, m| list_schedule(b, m, JobOrder::Fcfs));
        assert_eq!(s.assignments()[0].start, t(42));
    }

    #[test]
    fn mrt_batch_stays_within_3x_of_lower_bound() {
        // The paper's 3+ε on-line moldable algorithm: batches of MRT.
        let mut rng = SimRng::seed_from(21);
        for trial in 0..6 {
            let m = 16;
            let n = 10 + trial * 8;
            let mut clock = 0u64;
            let jobs: Vec<Job> = (0..n)
                .map(|i| {
                    clock += rng.int_range(0, 300);
                    Job::moldable(
                        i as u64,
                        MoldableProfile::from_model(
                            d(rng.int_range(50, 2000)),
                            &SpeedupModel::Amdahl {
                                seq_fraction: rng.range(0.0, 0.25),
                            },
                            rng.int_range(1, 16) as usize,
                        ),
                    )
                    .released_at(t(clock))
                })
                .collect();
            let s = batch_online(&jobs, m, |b, m| mrt_schedule(b, m, MrtParams::default()));
            assert!(s.validate(&jobs).is_ok(), "trial {trial}");
            let lb = cmax_lower_bound(&jobs, m).ticks() as f64;
            let ratio = s.makespan().ticks() as f64 / lb;
            assert!(
                ratio <= 3.0 * 1.01 + 1e-9,
                "trial {trial}: on-line ratio {ratio} above 3+ε"
            );
        }
    }

    #[test]
    fn empty_workload() {
        let s = batch_online(&[], 4, |b, m| list_schedule(b, m, JobOrder::Fcfs));
        assert!(s.is_empty());
    }

    #[test]
    fn reservation_aligned_batches_avoid_blackouts() {
        use crate::backfill::Reservation;
        use crate::backfill::{backfill_schedule, respects_reservations, BackfillPolicy};
        // One blackout window; jobs that would cross it get deferred.
        let resv = [Reservation {
            start: t(50),
            end: t(100),
            procs: 2, // full machine in the blackout interpretation
        }];
        let jobs = vec![
            Job::sequential(1, d(30)),
            Job::sequential(2, d(40)).released_at(t(10)),
            Job::sequential(3, d(20)).released_at(t(60)),
        ];
        let s = batch_online_avoiding(&jobs, 2, &resv, |b, m| list_schedule(b, m, JobOrder::Fcfs));
        assert!(s.validate(&jobs).is_ok());
        // No assignment intersects the blackout.
        for a in s.assignments() {
            assert!(
                a.end <= t(50) || a.start >= t(100),
                "assignment {:?} crosses the blackout",
                a
            );
        }
        // §5.1's prediction, measured: the aligned-batch construction is
        // never better than reservation-aware backfilling.
        let bf = backfill_schedule(&jobs, 2, &resv, BackfillPolicy::Conservative);
        assert!(respects_reservations(&bf, 2, &resv));
        assert!(
            bf.makespan() <= s.makespan(),
            "backfilling wins (paper §5.1)"
        );
    }

    #[test]
    #[should_panic]
    fn overlapping_reservations_rejected() {
        use crate::backfill::Reservation;
        let resv = [
            Reservation {
                start: t(0),
                end: t(10),
                procs: 1,
            },
            Reservation {
                start: t(5),
                end: t(15),
                procs: 1,
            },
        ];
        batch_online_avoiding(&[], 2, &resv, |b, m| list_schedule(b, m, JobOrder::Fcfs));
    }

    #[test]
    #[should_panic]
    fn offline_must_schedule_everything() {
        let jobs = vec![Job::sequential(1, d(5)), Job::sequential(2, d(5))];
        batch_online(&jobs, 1, |_b, m| Schedule::new(m));
    }
}
