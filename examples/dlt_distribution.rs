//! Divisible load distribution (§2.1): one load, five policies.
//!
//! A 10^4-unit load (≈ 2.8 CPU-hours of reference work) is spread over a
//! 16-worker cluster; the example shows why the distribution policy — not
//! just the hardware — decides the completion time, and how the choice
//! flips with the network class.
//!
//! ```sh
//! cargo run --example dlt_distribution --release
//! ```

use lsps::dlt::multiround::best_round_count;
use lsps::dlt::selfsched::best_chunk;
use lsps::prelude::*;

fn show(name: &str, workers: &[Worker]) {
    let w = 10_000.0;
    let one = star_single_round(w, workers, WorkerOrder::ByBandwidth);
    let (rounds, multi) = best_round_count(w, workers, 32, 1.5);
    let (chunk, dynamic) = best_chunk(w, workers);
    let steady = star_steady_state(workers);
    let bound = w / steady.throughput;
    println!("--- {name}");
    println!(
        "  one round            : {:8.1} s  ({} workers used)",
        one.makespan,
        one.used_workers()
    );
    println!("  multi-round (R={rounds:>2})   : {:8.1} s", multi.makespan);
    println!("  self-sched (c={chunk:>6.1}): {:8.1} s", dynamic.makespan);
    println!("  steady-state bound   : {bound:8.1} s  (asymptotic optimum)");
}

fn main() {
    // Same CPUs (two generations), three networks of Fig. 3. One load unit
    // moves 10 MB.
    let speeds: Vec<f64> = (0..16)
        .map(|i| if i % 2 == 0 { 1.0 } else { 0.6 })
        .collect();
    let mk = |bw_units: f64, lat: f64| -> Vec<Worker> {
        speeds
            .iter()
            .map(|&s| Worker::new(s, bw_units, lat))
            .collect()
    };
    show("Myrinet (250 MB/s, 10 us)", &mk(25.0, 10e-6));
    show("GigE (125 MB/s, 50 us)", &mk(12.5, 50e-6));
    show("Eth100 (12.5 MB/s, 100 us)", &mk(1.25, 100e-6));
    show("Eth100 + 0.5 s latency", &mk(1.25, 0.5));
    println!(
        "\nreading: fast nets want pipelining (multi-round/self-sched); high \
         latency pushes back to one round and fewer workers."
    );
}
