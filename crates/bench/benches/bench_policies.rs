//! Scheduling-policy construction cost: how long each §4 algorithm takes to
//! build a schedule, as instance size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lsps_core::backfill::{backfill_schedule, BackfillPolicy};
use lsps_core::bicriteria::{bicriteria_schedule, BiCriteriaParams};
use lsps_core::list::{list_schedule, JobOrder};
use lsps_core::mrt::{mrt_schedule, MrtParams};
use lsps_core::policy::{by_name, Policy, PolicyCtx};
use lsps_core::smart::smart_schedule;
use lsps_des::{Dur, SimRng, Time};
use lsps_workload::{Job, MoldableProfile, SpeedupModel};

const M: usize = 100;

fn rigid_jobs(n: usize, online: bool, seed: u64) -> Vec<Job> {
    let mut rng = SimRng::seed_from(seed);
    let mut clock = 0u64;
    (0..n)
        .map(|i| {
            if online {
                clock += rng.int_range(0, 100);
            }
            Job::rigid(
                i as u64,
                rng.int_range(1, M as u64 / 2) as usize,
                Dur::from_ticks(rng.int_range(10, 2_000)),
            )
            .released_at(Time::from_ticks(clock))
            .with_weight(rng.range(0.5, 5.0))
        })
        .collect()
}

fn moldable_jobs(n: usize, seed: u64) -> Vec<Job> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|i| {
            Job::moldable(
                i as u64,
                MoldableProfile::from_model(
                    Dur::from_ticks(rng.int_range(50, 5_000)),
                    &SpeedupModel::Amdahl {
                        seq_fraction: rng.range(0.0, 0.3),
                    },
                    rng.int_range(1, M as u64) as usize,
                ),
            )
        })
        .collect()
}

fn policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policies");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[100usize, 400] {
        let rigid0 = {
            let mut js = rigid_jobs(n, false, 1);
            for j in &mut js {
                j.release = Time::ZERO;
            }
            js
        };
        let rigid_online = rigid_jobs(n, true, 2);
        let moldable = moldable_jobs(n, 3);

        group.bench_with_input(BenchmarkId::new("list_fcfs", n), &n, |b, _| {
            b.iter(|| list_schedule(&rigid0, M, JobOrder::Fcfs));
        });
        group.bench_with_input(BenchmarkId::new("smart_weighted", n), &n, |b, _| {
            b.iter(|| smart_schedule(&rigid0, M, true));
        });
        group.bench_with_input(BenchmarkId::new("backfill_easy", n), &n, |b, _| {
            b.iter(|| backfill_schedule(&rigid_online, M, &[], BackfillPolicy::Easy));
        });
        group.bench_with_input(BenchmarkId::new("backfill_conservative", n), &n, |b, _| {
            b.iter(|| backfill_schedule(&rigid_online, M, &[], BackfillPolicy::Conservative));
        });
        group.bench_with_input(BenchmarkId::new("mrt", n), &n, |b, _| {
            b.iter(|| mrt_schedule(&moldable, M, MrtParams::default()));
        });
        group.bench_with_input(BenchmarkId::new("bicriteria", n), &n, |b, _| {
            b.iter(|| bicriteria_schedule(&rigid_online, M, BiCriteriaParams::default()));
        });
    }
    group.finish();
}

/// Registry dispatch cost: the same algorithms called directly vs through
/// a `Box<dyn Policy>` from the registry, on a 1000-job workload. The
/// trait layer's `prepare` borrows (no copy) when the input is already in
/// the policy's domain, so the two must be indistinguishable.
fn registry_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_dispatch");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 1000;
    let rigid_online = rigid_jobs(n, true, 5);
    let ctx = PolicyCtx::default();

    group.bench_function("list_lpt_direct", |b| {
        b.iter(|| list_schedule(&rigid_online, M, JobOrder::Lpt));
    });
    let list_obj: Box<dyn Policy> = by_name("list-lpt").expect("registered");
    group.bench_function("list_lpt_trait_object", |b| {
        b.iter(|| list_obj.schedule(&rigid_online, M, &ctx));
    });

    group.bench_function("backfill_easy_direct", |b| {
        b.iter(|| backfill_schedule(&rigid_online, M, &[], BackfillPolicy::Easy));
    });
    let bf_obj: Box<dyn Policy> = by_name("backfill-easy").expect("registered");
    group.bench_function("backfill_easy_trait_object", |b| {
        b.iter(|| bf_obj.schedule(&rigid_online, M, &ctx));
    });

    group.bench_function("bicriteria_direct", |b| {
        b.iter(|| bicriteria_schedule(&rigid_online, M, BiCriteriaParams::default()));
    });
    let bc_obj: Box<dyn Policy> = by_name("bicriteria").expect("registered");
    group.bench_function("bicriteria_trait_object", |b| {
        b.iter(|| bc_obj.schedule(&rigid_online, M, &ctx));
    });
    group.finish();
}

criterion_group!(benches, policies, registry_dispatch);
criterion_main!(benches);
