//! # lsps-workload — applications as the paper models them
//!
//! §2 of the paper distinguishes two coarse application models designed to
//! *hide* communications:
//!
//! * **Parallel Tasks (PT)** — rigid, moldable or malleable jobs whose
//!   parallel execution time embeds a global penalty factor
//!   ([`SpeedupModel`]); moldable jobs carry a full time-vs-processors
//!   profile ([`MoldableProfile`]) with the classic monotony assumptions
//!   (time non-increasing, work non-decreasing in the processor count).
//! * **Divisible Load (DLT)** — arbitrarily splittable bags of fine-grain
//!   work ([`JobKind::Divisible`]), covering the CIMENT *multi-parametric*
//!   campaigns of §5.2 ([`campaign`](mod@crate::campaign)).
//!
//! The crate also provides the workload generators used by the experiment
//! harness: the Fig. 2 parallel / non-parallel mixes, per-community profiles
//! (numerical physicists submit week-long sequential jobs, computer
//! scientists short debug runs — §5.2), and an SWF-style trace importer plus
//! a lossless JSON-lines format.

pub mod campaign;
pub mod failure;
pub mod gen;
pub mod job;
pub mod open;
pub mod speedup;
pub mod swf;

pub use campaign::{campaign, Campaign};
pub use failure::{FailurePolicy, FailureRegime, FailureTraceSpec, Outage, ScriptedOutage};
pub use gen::{ArrivalSpec, CommunityProfile, DistSpec, WorkloadSpec};
pub use job::{Job, JobId, JobKind, UserId};
pub use open::{JobClass, OpenArrival, OpenStream, OpenStreamSpec};
pub use speedup::{MoldableProfile, SpeedupModel};

/// Commonly used items.
pub mod prelude {
    pub use crate::campaign::{campaign, Campaign};
    pub use crate::failure::{FailurePolicy, FailureRegime, FailureTraceSpec, Outage};
    pub use crate::gen::{ArrivalSpec, CommunityProfile, DistSpec, WorkloadSpec};
    pub use crate::job::{Job, JobId, JobKind, UserId};
    pub use crate::open::{JobClass, OpenArrival, OpenStream, OpenStreamSpec};
    pub use crate::speedup::{MoldableProfile, SpeedupModel};
}
