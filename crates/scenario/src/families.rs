//! Named workload families — generator closures a campaign spec can name.
//!
//! A family is a seeded generator parameterized by an instance size `n`;
//! resolution happens at spec-validation time, so an unknown family fails
//! before any cell runs. The built-ins cover the paper's experiment
//! populations:
//!
//! * `fig2-parallel` / `fig2-sequential` — the Fig. 2 job populations,
//!   drawn through a per-`n` child stream (so every `n` of a sweep sees
//!   independent draws from one base seed), exactly as the `fig2` binary
//!   always generated them.
//! * `fig2-rigid` — the Fig. 2 parallel population rigidified at half its
//!   maximum width: the "realistic rigid trace" of the TAB-P comparison.
//! * `moldable0` / `moldable-online` / `rigid0` — the instance families of
//!   the guarantees experiment (TAB-G), drawn through a per-`m` child
//!   stream so every machine size sees its historical instances.
//!
//! Synthetic one-off workloads do not need a family: a spec can embed a
//! full [`lsps_workload::WorkloadSpec`] inline
//! ([`crate::spec::WorkloadSource::Spec`]).

use std::sync::Arc;

use lsps_des::{Dur, SimRng, Time};
use lsps_workload::{Job, JobKind, MoldableProfile, SpeedupModel, WorkloadSpec};

/// A resolved family: machine size + seeded RNG in, jobs out.
pub type FamilyGen = Arc<dyn Fn(usize, &mut SimRng) -> Vec<Job> + Send + Sync>;

/// A weighted moldable instance of the guarantees experiment: Amdahl
/// profiles, work 50..5000 s, optional staggered releases. (Moved verbatim
/// from the `guarantees` binary — the instances are seed-pinned history.)
pub fn moldable_instance(rng: &mut SimRng, n: usize, m: usize, online: bool) -> Vec<Job> {
    let mut clock = 0u64;
    (0..n)
        .map(|i| {
            if online {
                clock += rng.int_range(0, 200);
            }
            Job::moldable(
                i as u64,
                MoldableProfile::from_model(
                    Dur::from_ticks(rng.int_range(50, 5_000)),
                    &SpeedupModel::Amdahl {
                        seq_fraction: rng.range(0.0, 0.3),
                    },
                    rng.int_range(1, m as u64) as usize,
                ),
            )
            .released_at(Time::from_ticks(clock))
            .with_weight(rng.range(0.5, 5.0))
        })
        .collect()
}

/// A weighted rigid instance of the guarantees experiment.
pub fn rigid_instance(rng: &mut SimRng, n: usize, m: usize) -> Vec<Job> {
    (0..n)
        .map(|i| {
            Job::rigid(
                i as u64,
                rng.int_range(1, m as u64) as usize,
                Dur::from_ticks(rng.int_range(10, 2_000)),
            )
            .with_weight(rng.range(0.5, 5.0))
        })
        .collect()
}

/// Rigidify a moldable job list at half the maximum width (minimum one
/// processor) — the TAB-P "Rigid" application class.
pub fn rigidify_at_half_width(jobs: Vec<Job>) -> Vec<Job> {
    jobs.into_iter()
        .map(|j| match &j.kind {
            JobKind::Moldable { profile } => {
                let k = (profile.max_procs() / 2).max(1);
                let len = profile.time(k);
                Job {
                    kind: JobKind::Rigid { procs: k, len },
                    ..j
                }
            }
            _ => j,
        })
        .collect()
}

/// Resolve a built-in family name at instance size `n`. Returns `None` for
/// unknown names (spec validation reports that before any cell runs).
pub fn builtin_family(family: &str, n: usize) -> Option<FamilyGen> {
    Some(match family {
        "fig2-parallel" => Arc::new(move |m, rng: &mut SimRng| {
            let mut rng = rng.child(n as u64);
            WorkloadSpec::fig2_parallel(n).generate(m, &mut rng)
        }),
        "fig2-sequential" => Arc::new(move |m, rng: &mut SimRng| {
            let mut rng = rng.child(n as u64);
            WorkloadSpec::fig2_sequential(n).generate(m, &mut rng)
        }),
        "fig2-rigid" => Arc::new(move |m, rng: &mut SimRng| {
            rigidify_at_half_width(WorkloadSpec::fig2_parallel(n).generate(m, rng))
        }),
        "moldable0" => Arc::new(move |m, rng: &mut SimRng| {
            let mut rng = rng.child(m as u64);
            moldable_instance(&mut rng, n, m, false)
        }),
        "moldable-online" => Arc::new(move |m, rng: &mut SimRng| {
            let mut rng = rng.child(m as u64);
            moldable_instance(&mut rng, n, m, true)
        }),
        "rigid0" => Arc::new(move |m, rng: &mut SimRng| {
            let mut rng = rng.child(m as u64);
            rigid_instance(&mut rng, n, m)
        }),
        "large-scale" => Arc::new(move |m, rng: &mut SimRng| {
            let mut rng = rng.child(n as u64);
            large_scale_instance(&mut rng, n, m)
        }),
        "trace-100k" => Arc::new(move |m, rng: &mut SimRng| {
            let mut rng = rng.child(n as u64);
            trace_instance(&mut rng, n, m)
        }),
        "uniform-seq" => Arc::new(move |_m, rng: &mut SimRng| {
            let mut rng = rng.child(n as u64);
            uniform_seq_instance(&mut rng, n)
        }),
        "unknown-runtimes" => Arc::new(move |_m, rng: &mut SimRng| {
            let mut rng = rng.child(n as u64);
            unknown_runtimes_instance(&mut rng, n)
        }),
        _ => return None,
    })
}

/// The "large scale platforms" population of the paper's title: a
/// thousands-of-jobs rigid stream for 1024+-processor machines. Widths
/// are heavy-tailed log-uniform up to `m/8` (mostly narrow jobs, the
/// occasional wide one — the shape backfilling exploits), runtimes span
/// two orders of magnitude, and arrivals keep the machine near
/// saturation. Placing such an instance was infeasible with full-scan
/// timeline queries; the availability profile handles it in seconds.
pub fn large_scale_instance(rng: &mut SimRng, n: usize, m: usize) -> Vec<Job> {
    let max_w = (m / 8).max(1) as f64;
    let mut clock = 0u64;
    (0..n)
        .map(|i| {
            clock += rng.int_range(0, 120);
            let w = (rng.log_uniform(1.0, max_w).round() as usize).clamp(1, m);
            Job::rigid(
                i as u64,
                w,
                Dur::from_secs_f64(rng.log_uniform(120.0, 14_400.0)),
            )
            .released_at(Time::from_secs(clock))
            .with_weight(rng.range(0.5, 5.0))
        })
        .collect()
}

/// A synthetic trace in the shape of the SWF archives the backfilling
/// literature replays, sized for 100k-job event-driven runs: rigid jobs
/// with power-of-two-biased widths (the allocation-request bias every
/// archive shows), log-normal runtimes (median 10 min, minutes-to-days
/// right tail), and diurnally modulated Poisson arrivals — rush hours
/// and quiet nights over an 86 400 s day. Arrivals trickle instead of
/// batching, which is exactly the regime where per-event incremental
/// replanning (O(dirty) work per decision) beats the full replan.
pub fn trace_instance(rng: &mut SimRng, n: usize, m: usize) -> Vec<Job> {
    let max_w = (m / 8).max(1);
    let mut clock = 0.0f64;
    (0..n)
        .map(|i| {
            // Arrival intensity peaks mid-day and bottoms out at night;
            // the mean inter-arrival stretches with the day phase. The
            // base rate is tuned to ~0.9 average offered load at m=1024:
            // the midday rush transiently overloads the machine and the
            // backlog drains overnight, so the queue is cyclo-stationary
            // — deep enough to exercise backfilling, bounded so the
            // planning horizon does not grow with the trace length.
            let phase = (clock % 86_400.0) / 86_400.0;
            let intensity = 0.6 - 0.4 * (std::f64::consts::TAU * phase).cos();
            clock += rng.exp(21.0 / intensity);
            let raw = (rng.log_uniform(1.0, max_w as f64).round() as usize).clamp(1, max_w);
            let w = if rng.chance(0.75) {
                // Snap down to a power of two, never past the cap.
                let p2 = raw.next_power_of_two();
                if p2 > raw {
                    p2 / 2
                } else {
                    p2
                }
            } else {
                raw
            };
            let len = rng.lognormal(600f64.ln(), 1.4).clamp(30.0, 172_800.0);
            Job::rigid(i as u64, w.max(1), Dur::from_secs_f64(len))
                .released_at(Time::from_secs_f64(clock))
                .with_weight(rng.range(0.5, 5.0))
        })
        .collect()
}

/// A sequential bag for the *uniform-machine* model (§2.2): n weighted
/// one-processor jobs, 60–900 s, staggered arrivals — the workload class
/// where per-processor speeds, not widths, decide placement. Independent
/// of `m` (the machine is the axis under study).
pub fn uniform_seq_instance(rng: &mut SimRng, n: usize) -> Vec<Job> {
    let mut clock = 0u64;
    (0..n)
        .map(|i| {
            clock += rng.int_range(0, 120);
            Job::sequential(i as u64, Dur::from_secs(rng.int_range(60, 900)))
                .released_at(Time::from_secs(clock))
                .with_weight(rng.range(0.5, 5.0))
        })
        .collect()
}

/// A sequential bag whose runtimes the scheduler must *discover* (§4.2
/// non-clairvoyance): heavy-tailed log-uniform lengths over 2.5 orders of
/// magnitude, so any fixed estimate is badly wrong for most jobs and the
/// exponential-trial doubling actually pays its overhead.
pub fn unknown_runtimes_instance(rng: &mut SimRng, n: usize) -> Vec<Job> {
    let mut clock = 0u64;
    (0..n)
        .map(|i| {
            clock += rng.int_range(0, 60);
            Job::sequential(i as u64, Dur::from_secs_f64(rng.log_uniform(10.0, 5_000.0)))
                .released_at(Time::from_secs(clock))
                .with_weight(rng.range(0.5, 5.0))
        })
        .collect()
}

/// Every built-in family name, for docs and error messages.
pub const FAMILY_NAMES: [&str; 10] = [
    "fig2-parallel",
    "fig2-sequential",
    "fig2-rigid",
    "moldable0",
    "moldable-online",
    "rigid0",
    "large-scale",
    "trace-100k",
    "uniform-seq",
    "unknown-runtimes",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_family_resolves_and_generates() {
        for name in FAMILY_NAMES {
            let family = builtin_family(name, 8).unwrap_or_else(|| panic!("{name} resolves"));
            let mut rng = SimRng::seed_from(3);
            let jobs = family(32, &mut rng);
            assert_eq!(jobs.len(), 8, "{name}");
            // Deterministic: same seed, same jobs.
            let mut rng2 = SimRng::seed_from(3);
            assert_eq!(jobs, family(32, &mut rng2), "{name}");
        }
        assert!(builtin_family("nope", 8).is_none());
    }

    #[test]
    fn fig2_rigid_is_all_rigid() {
        let family = builtin_family("fig2-rigid", 20).unwrap();
        let jobs = family(100, &mut SimRng::seed_from(7));
        assert!(jobs.iter().all(|j| matches!(j.kind, JobKind::Rigid { .. })));
        // Half-width rigidification keeps widths within the machine.
        assert!(jobs.iter().all(|j| j.min_procs() <= 50));
    }

    #[test]
    fn sequential_families_are_sequential_and_machine_independent() {
        for name in ["uniform-seq", "unknown-runtimes"] {
            let family = builtin_family(name, 12).unwrap();
            let a = family(8, &mut SimRng::seed_from(9));
            let b = family(128, &mut SimRng::seed_from(9));
            assert_eq!(a, b, "{name}: machine size must not perturb the draws");
            assert!(
                a.iter()
                    .all(|j| matches!(j.kind, JobKind::Rigid { procs: 1, .. })),
                "{name}: every job is sequential"
            );
            assert!(a.iter().all(|j| !j.time_on(1).is_zero()), "{name}");
        }
        // The unknown-runtimes tail is heavy: the longest job dwarfs the
        // shortest by at least an order of magnitude on a modest draw.
        let family = builtin_family("unknown-runtimes", 30).unwrap();
        let jobs = family(8, &mut SimRng::seed_from(5));
        let lens: Vec<u64> = jobs.iter().map(|j| j.time_on(1).ticks()).collect();
        let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        assert!(hi / lo.max(&1) >= 10, "spread {lo}..{hi}");
    }

    #[test]
    fn large_scale_family_shape() {
        let family = builtin_family("large-scale", 200).unwrap();
        let m = 1024;
        let jobs = family(m, &mut SimRng::seed_from(11));
        assert_eq!(jobs.len(), 200);
        assert!(jobs.iter().all(|j| matches!(j.kind, JobKind::Rigid { .. })));
        // Widths respect the heavy-tail cap and runtimes are positive.
        assert!(jobs.iter().all(|j| (1..=m / 8).contains(&j.min_procs())));
        assert!(jobs.iter().all(|j| !j.time_on(j.min_procs()).is_zero()));
        // Mostly narrow: the median width is far below the cap.
        let mut widths: Vec<usize> = jobs.iter().map(|j| j.min_procs()).collect();
        widths.sort_unstable();
        assert!(widths[100] < m / 16, "median width {}", widths[100]);
        // Releases form a stream, not a batch.
        assert!(jobs.last().unwrap().release > jobs[0].release);
    }

    #[test]
    fn trace_family_shape() {
        let family = builtin_family("trace-100k", 4_000).unwrap();
        let m = 1024;
        let jobs = family(m, &mut SimRng::seed_from(13));
        assert_eq!(jobs.len(), 4_000);
        assert!(jobs.iter().all(|j| matches!(j.kind, JobKind::Rigid { .. })));
        assert!(jobs.iter().all(|j| (1..=m / 8).contains(&j.min_procs())));
        // Power-of-two allocation bias: a clear majority of widths.
        let p2 = jobs
            .iter()
            .filter(|j| j.min_procs().is_power_of_two())
            .count();
        assert!(p2 * 2 > jobs.len(), "only {p2}/4000 power-of-two widths");
        // Log-normal runtimes: heavy right tail, bounded floor/ceiling.
        let lens: Vec<f64> = jobs
            .iter()
            .map(|j| j.time_on(j.min_procs()).as_secs_f64())
            .collect();
        assert!(lens.iter().all(|&l| (30.0..=172_800.0).contains(&l)));
        let mut sorted = lens.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(median < 2_000.0, "median runtime {median}");
        assert!(*sorted.last().unwrap() > 20_000.0, "tail too light");
        // Releases form a strictly growing stream (a trickle, not a batch),
        // and the diurnal modulation leaves visible density contrast: the
        // busiest six-hour-of-day bucket sees well over twice the arrivals
        // of the quietest.
        assert!(jobs.windows(2).all(|w| w[0].release <= w[1].release));
        assert!(jobs.last().unwrap().release.as_secs_f64() > 86_400.0);
        let mut buckets = [0usize; 4];
        for j in &jobs {
            let phase = j.release.as_secs_f64() % 86_400.0;
            buckets[(phase / 21_600.0) as usize % 4] += 1;
        }
        let (lo, hi) = (buckets.iter().min().unwrap(), buckets.iter().max().unwrap());
        assert!(hi > &(lo * 2), "diurnal contrast {buckets:?}");
    }

    #[test]
    fn guarantee_families_depend_on_machine_size_stream() {
        // The per-m child stream means different machine sizes draw
        // different instances from the same seed — the historical shape.
        let family = builtin_family("rigid0", 10).unwrap();
        let a = family(16, &mut SimRng::seed_from(1));
        let b = family(64, &mut SimRng::seed_from(1));
        assert_ne!(a, b);
    }
}
