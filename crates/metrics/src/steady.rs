//! Steady-state estimation for open-arrival runs: warmup truncation,
//! batch-means confidence intervals, and per-class response-time
//! distributions.
//!
//! A terminating run reports exact criteria; an *open* run samples an
//! ongoing stochastic process, so its statistics need the standard
//! steady-state toolkit:
//!
//! * **Warmup truncation** ([`WarmupSpec`]) — the first observations are
//!   biased by the empty-system start. Either discard a fixed fraction, or
//!   detect the transient with the MSER rule: over the completion-ordered
//!   flow sequence `z_0..z_{n-1}`, pick the cut
//!
//!   ```text
//!   d* = argmin_{0 ≤ d ≤ n/2}  Var(z_d..z_{n-1}) / (n − d)
//!   ```
//!
//!   — the truncation that minimizes the squared standard error of the
//!   remaining mean. Computed in one backward pass over suffix sums.
//!
//! * **Batch means** — post-warmup observations are serially correlated,
//!   so the iid CI formula underestimates. Split the ordered sequence into
//!   `k` equal batches with means `ȳ_1..ȳ_k`; batch means are approximately
//!   independent for large batches, giving the half-width
//!
//!   ```text
//!   ci95 = 1.96 · s_k / √k,   s_k² = Σ (ȳ_i − ȳ)² / (k − 1)
//!   ```
//!
//!   With independent replications the campaign layer instead applies
//!   [`crate::Summary::ci95`] *across* replication means — same formula,
//!   replications as the batches.
//!
//! * **Response distributions** ([`ClassResponse`]) — per-class mean,
//!   p50/p95/p99 (exact, by sorting the retained values) and max slowdown
//!   (`flow / runtime`), the criteria that actually separate policies at
//!   ρ → 1.

use serde::{Deserialize, Serialize};

use crate::summary::Summary;

/// Warmup (initial-transient) truncation rule for one open run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum WarmupSpec {
    /// Discard the first `frac ∈ [0, 1)` of observations.
    Fraction(f64),
    /// MSER stationarity detection (see the module docs); the cut is
    /// capped at half the observations so a mean shift late in the run
    /// cannot silently discard almost everything.
    Mser,
}

/// One response observation: the completion of one job, in completion
/// (event) order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResponseObs {
    /// Job-class index (mirrors the open stream's class list).
    pub class: u32,
    /// Response (flow) time: completion − release, seconds.
    pub flow_s: f64,
    /// Slowdown `flow / runtime` (≥ 1 for a job that ever ran).
    pub slowdown: f64,
}

/// Per-class response-time distribution of one open run, post-warmup.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassResponse {
    /// Class index into the stream's class list.
    pub class: u32,
    /// Post-warmup completions of this class.
    pub n: usize,
    /// Mean response time, seconds.
    pub mean_flow_s: f64,
    /// Median response time, seconds.
    pub p50_flow_s: f64,
    /// 95th-percentile response time, seconds.
    pub p95_flow_s: f64,
    /// 99th-percentile response time, seconds.
    pub p99_flow_s: f64,
    /// Largest slowdown observed.
    pub max_slowdown: f64,
    /// Batch-means 95% half-width on the mean response time (0 when fewer
    /// than two batches have data).
    pub ci95_flow_s: f64,
}

/// Accumulator for an open run's response observations. Memory is one
/// [`ResponseObs`] (24 bytes) per *counted* completion — bounded by the
/// stopping rule, not by simulated events.
#[derive(Clone, Debug, Default)]
pub struct SteadyState {
    obs: Vec<ResponseObs>,
}

impl SteadyState {
    /// An empty accumulator.
    pub fn new() -> SteadyState {
        SteadyState::default()
    }

    /// Record one completion (call in completion order).
    pub fn record(&mut self, class: u32, flow_s: f64, slowdown: f64) {
        assert!(flow_s.is_finite() && slowdown.is_finite());
        self.obs.push(ResponseObs {
            class,
            flow_s,
            slowdown,
        });
    }

    /// Observations recorded so far.
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    /// Number of leading observations the warmup rule discards.
    pub fn warmup_cut(&self, spec: WarmupSpec) -> usize {
        let n = self.obs.len();
        match spec {
            WarmupSpec::Fraction(frac) => {
                assert!((0.0..1.0).contains(&frac), "warmup fraction {frac}");
                (n as f64 * frac).floor() as usize
            }
            WarmupSpec::Mser => {
                if n < 4 {
                    return 0;
                }
                // Suffix sums in one backward pass: for each cut d,
                // SE²(d) = Var(z_d..) / (n − d) with the population
                // variance Var = (Q − S²/k) / k over the k = n − d tail
                // values.
                let mut s = 0.0f64; // Σ z_i over the suffix
                let mut q = 0.0f64; // Σ z_i² over the suffix
                let mut best = (f64::INFINITY, 0usize);
                let mut se2 = vec![f64::INFINITY; n / 2 + 1];
                for (i, o) in self.obs.iter().enumerate().rev() {
                    s += o.flow_s;
                    q += o.flow_s * o.flow_s;
                    let k = (n - i) as f64;
                    if i <= n / 2 {
                        se2[i] = (q - s * s / k).max(0.0) / (k * k);
                    }
                }
                // Smallest d wins ties: discard as little as possible.
                for (d, &v) in se2.iter().enumerate() {
                    if v < best.0 {
                        best = (v, d);
                    }
                }
                best.1
            }
        }
    }

    /// Per-class response distributions over the post-warmup observations
    /// (`cut` leading observations discarded), with batch-means CIs over
    /// `batches` equal batches per class. Classes are reported in index
    /// order; classes with no post-warmup completions are omitted.
    pub fn per_class(&self, cut: usize, batches: usize) -> Vec<ClassResponse> {
        assert!(batches >= 1);
        let tail = &self.obs[cut.min(self.obs.len())..];
        let mut classes: Vec<u32> = tail.iter().map(|o| o.class).collect();
        classes.sort_unstable();
        classes.dedup();
        classes
            .into_iter()
            .map(|class| {
                // Completion order is preserved within the class — batch
                // means need the serial structure intact.
                let flows: Vec<f64> = tail
                    .iter()
                    .filter(|o| o.class == class)
                    .map(|o| o.flow_s)
                    .collect();
                let max_slowdown = tail
                    .iter()
                    .filter(|o| o.class == class)
                    .map(|o| o.slowdown)
                    .fold(0.0, f64::max);
                let summary = Summary::from_iter(flows.iter().copied());
                ClassResponse {
                    class,
                    n: flows.len(),
                    mean_flow_s: summary.mean(),
                    p50_flow_s: summary.quantile(0.5),
                    p95_flow_s: summary.quantile(0.95),
                    p99_flow_s: summary.quantile(0.99),
                    max_slowdown,
                    ci95_flow_s: batch_means_ci95(&flows, batches),
                }
            })
            .collect()
    }
}

/// Batch-means 95% half-width over `values` (serial order) split into
/// `batches` equal batches: `1.96 · s_k / √k` with `s_k` the sample std of
/// the batch means. Short inputs use one batch per value; fewer than two
/// non-empty batches yield 0 (no spread information).
pub fn batch_means_ci95(values: &[f64], batches: usize) -> f64 {
    let k = batches.min(values.len());
    if k < 2 {
        return 0.0;
    }
    let mut means = Summary::new();
    let base = values.len() / k;
    let extra = values.len() % k;
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        let batch = &values[start..start + len];
        start += len;
        means.add(batch.iter().sum::<f64>() / batch.len() as f64);
    }
    1.96 * means.std_dev() / (k as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steady_with(flows: &[f64]) -> SteadyState {
        let mut s = SteadyState::new();
        for &f in flows {
            s.record(0, f, f);
        }
        s
    }

    #[test]
    fn fraction_warmup_cuts_the_prefix() {
        let s = steady_with(&[1.0; 100]);
        assert_eq!(s.warmup_cut(WarmupSpec::Fraction(0.0)), 0);
        assert_eq!(s.warmup_cut(WarmupSpec::Fraction(0.25)), 25);
        assert_eq!(s.warmup_cut(WarmupSpec::Fraction(0.999)), 99);
    }

    #[test]
    fn mser_detects_an_initial_transient() {
        // 50 inflated warmup observations, then a tight stationary regime:
        // the MSER cut must land at (or extremely near) the regime change.
        let mut flows = vec![100.0; 50];
        flows.extend(std::iter::repeat_n(10.0, 950));
        let s = steady_with(&flows);
        let cut = s.warmup_cut(WarmupSpec::Mser);
        assert!((48..=52).contains(&cut), "cut {cut}");
        // A stationary sequence needs no cut at all: constant tails tie at
        // SE = 0 and the smallest d wins.
        assert_eq!(steady_with(&[5.0; 200]).warmup_cut(WarmupSpec::Mser), 0);
    }

    #[test]
    fn mser_cut_is_capped_at_half() {
        // A late mean shift must not discard (almost) everything.
        let mut flows = vec![10.0; 900];
        flows.extend(std::iter::repeat_n(500.0, 100));
        let s = steady_with(&flows);
        assert!(s.warmup_cut(WarmupSpec::Mser) <= 500);
    }

    #[test]
    fn batch_means_match_the_hand_formula() {
        // 4 batches of 2 over 8 values: batch means 1.5, 3.5, 5.5, 7.5.
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let means = Summary::from_iter([1.5, 3.5, 5.5, 7.5]);
        let expected = 1.96 * means.std_dev() / 2.0;
        assert!((batch_means_ci95(&values, 4) - expected).abs() < 1e-12);
        // Degenerate: one batch (or one value) has no spread information.
        assert_eq!(batch_means_ci95(&values, 1), 0.0);
        assert_eq!(batch_means_ci95(&[3.0], 20), 0.0);
        assert_eq!(batch_means_ci95(&[], 20), 0.0);
    }

    #[test]
    fn per_class_distributions_are_exact() {
        let mut s = SteadyState::new();
        // Class 0: flows 1..=100 in order; class 1: constant 5 with one
        // big slowdown.
        for i in 1..=100 {
            s.record(0, i as f64, 1.0);
        }
        for _ in 0..10 {
            s.record(1, 5.0, 7.5);
        }
        let per = s.per_class(0, 10);
        assert_eq!(per.len(), 2);
        let c0 = &per[0];
        assert_eq!((c0.class, c0.n), (0, 100));
        assert!((c0.mean_flow_s - 50.5).abs() < 1e-12);
        // Lower nearest-rank on 1..=100: p50 = 50, p95 = 95, p99 = 99.
        assert_eq!(
            (c0.p50_flow_s, c0.p95_flow_s, c0.p99_flow_s),
            (50.0, 95.0, 99.0)
        );
        let c1 = &per[1];
        assert_eq!((c1.class, c1.n), (1, 10));
        assert_eq!(c1.max_slowdown, 7.5);
        assert_eq!(c1.ci95_flow_s, 0.0, "constant flows, zero spread");
    }

    #[test]
    fn warmup_cut_applies_before_class_stats() {
        let mut s = SteadyState::new();
        for _ in 0..50 {
            s.record(0, 1000.0, 1.0); // transient
        }
        for _ in 0..50 {
            s.record(0, 10.0, 1.0);
        }
        let cut = s.warmup_cut(WarmupSpec::Fraction(0.5));
        let per = s.per_class(cut, 5);
        assert_eq!(per[0].n, 50);
        assert!((per[0].mean_flow_s - 10.0).abs() < 1e-12);
    }
}
