//! Two practical §2.2/§4.2 effects in one run:
//!
//! 1. **Inexact runtime estimates** — users over-request wall time; EASY
//!    backfilling recovers the over-estimated tails at completion, while
//!    conservative backfilling trusts the estimates it booked.
//! 2. **Weak intra-cluster heterogeneity** — two CPU generations inside a
//!    cluster, scheduled with speed-aware minimum-completion-time.
//!
//! ```sh
//! cargo run --example estimates_and_speeds --release
//! ```

use lsps::core::backfill::backfill_schedule_estimated;
use lsps::core::uniform::uniform_list_schedule;
use lsps::prelude::*;

fn main() {
    let m = 32;
    let mut rng = SimRng::seed_from(23);
    let jobs: Vec<Job> = (0..80)
        .map(|i| {
            Job::rigid(
                i,
                rng.int_range(1, 8) as usize,
                Dur::from_secs(rng.int_range(30, 1_800)),
            )
            .released_at(Time::from_secs(rng.int_range(0, 3_600)))
        })
        .collect();

    println!("estimate accuracy vs backfilling flavour (m = {m}, 80 rigid jobs):");
    println!(
        "{:>8}  {:>22}  {:>22}",
        "factor", "conservative Cmax (s)", "EASY Cmax (s)"
    );
    for factor in [1.0, 1.5, 2.0, 5.0] {
        let cons = backfill_schedule_estimated(&jobs, m, &[], BackfillPolicy::Conservative, factor);
        let easy = backfill_schedule_estimated(&jobs, m, &[], BackfillPolicy::Easy, factor);
        cons.validate(&jobs).expect("valid");
        easy.validate(&jobs).expect("valid");
        println!(
            "{factor:>8.1}  {:>22.0}  {:>22.0}",
            cons.makespan().as_secs_f64(),
            easy.makespan().as_secs_f64(),
        );
    }
    println!("reading: over-estimates inflate conservative schedules; EASY reuses the\nfreed tails, so its degradation is milder.\n");

    // Uniform machines: the two CIMENT Athlon generations in one cluster.
    let seq_jobs: Vec<Job> = (0..60)
        .map(|i| Job::sequential(1_000 + i, Dur::from_secs(rng.int_range(60, 900))))
        .collect();
    let speeds: Vec<f64> = (0..16).map(|i| if i < 8 { 1.0 } else { 0.55 }).collect();
    let s = uniform_list_schedule(&seq_jobs, &speeds, JobOrder::Lpt);
    s.validate(&seq_jobs).expect("valid");
    let on_fast = s.assignments().iter().filter(|a| a.machine < 8).count();
    println!("uniform machines (8 × speed 1.0 + 8 × speed 0.55):");
    println!(
        "  makespan {:.0} s; {} of {} jobs landed on the fast generation",
        s.makespan().as_secs_f64(),
        on_fast,
        seq_jobs.len()
    );
}
