//! Service-vs-in-process equivalence on the checked-in example specs:
//! the aggregate (and raw) CSV served by the daemon must be byte-identical
//! to [`run_campaign`]'s, a daemon restart must resume entirely from the
//! cache (100% cached, zero recompute), and the HTTP layer must carry the
//! same bytes end to end.

use std::fs;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lsps_scenario::{run_campaign, CampaignOptions, CampaignSpec};
use lsps_service::daemon::config_under;
use lsps_service::http::{get, post};
use lsps_service::{Daemon, DaemonConfig};

fn examples_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples")
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lsps-service-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp root");
    dir
}

fn test_config(root: &Path) -> DaemonConfig {
    let mut cfg = config_under(root, env!("CARGO_BIN_EXE_lsps-worker"));
    cfg.workers = 3;
    cfg.base_dir = Some(examples_dir());
    cfg
}

fn wait_complete(daemon: &Daemon, id: &str, deadline: Duration) -> String {
    let start = Instant::now();
    loop {
        let status = daemon.status_json(id).expect("submitted campaign");
        if status.contains("\"complete\":true") {
            return status;
        }
        assert!(
            start.elapsed() < deadline,
            "campaign {id} did not complete in {deadline:?}: {status}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn in_process_reference(spec_text: &str) -> lsps_scenario::CampaignReport {
    let spec: CampaignSpec = serde_json::from_str(spec_text).expect("example spec parses");
    run_campaign(
        &spec,
        &CampaignOptions {
            cache_dir: None,
            threads: 0,
            base_dir: Some(examples_dir()),
        },
    )
    .expect("in-process run")
}

/// The tentpole acceptance loop for one spec: run sharded, compare bytes,
/// restart, assert 100% cached resume, compare bytes again.
fn daemon_matches_in_process(spec_file: &str, tag: &str) {
    let root = temp_root(tag);
    let spec_text = fs::read_to_string(examples_dir().join(spec_file)).expect("example spec");
    let reference = in_process_reference(&spec_text);

    let daemon = Daemon::start(test_config(&root)).expect("daemon starts");
    let id = daemon.submit(&spec_text).expect("spec accepted");
    // Idempotent: an equivalent resubmission maps to the same campaign.
    assert_eq!(daemon.submit(&spec_text).expect("resubmit"), id);
    wait_complete(&daemon, &id, Duration::from_secs(300));
    let (raw, agg) = daemon.csvs(&id).expect("complete campaign has CSVs");
    assert_eq!(raw, reference.raw_csv, "raw CSV differs from in-process");
    assert_eq!(
        agg, reference.aggregate_csv,
        "aggregate CSV differs from in-process"
    );
    daemon.shutdown();

    // Restart on the same cache + journal: the journal replay resumes the
    // campaign with every cell served from cache, zero recompute.
    let daemon = Daemon::start(test_config(&root)).expect("daemon restarts");
    let status = wait_complete(&daemon, &id, Duration::from_secs(60));
    assert!(
        status.contains(&format!("\"cached\":{}", reference.total)),
        "restart must resume 100% from cache: {status}"
    );
    let (raw2, agg2) = daemon.csvs(&id).expect("resumed campaign has CSVs");
    assert_eq!(raw2, reference.raw_csv, "resumed raw CSV differs");
    assert_eq!(agg2, reference.aggregate_csv, "resumed aggregate differs");
    daemon.shutdown();
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn small_campaign_service_equivalence() {
    daemon_matches_in_process("small_campaign.json", "small");
}

#[test]
fn outcomes_campaign_service_equivalence() {
    daemon_matches_in_process("outcomes_campaign.json", "outcomes");
}

#[test]
fn http_api_end_to_end() {
    let root = temp_root("http");
    let spec_text =
        fs::read_to_string(examples_dir().join("outcomes_campaign.json")).expect("example spec");
    let reference = in_process_reference(&spec_text);

    let daemon = Daemon::start(test_config(&root)).expect("daemon starts");
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || daemon.serve(listener))
    };

    let (status, body) = get(&addr, "/healthz").expect("healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = post(&addr, "/campaigns", &spec_text).expect("submit");
    assert_eq!(status, 202, "{body}");
    let id = body
        .split("\"id\":\"")
        .nth(1)
        .and_then(|r| r.split('"').next())
        .expect("status body carries the id")
        .to_string();

    // Progress polling over HTTP; aggregate is 409 until complete.
    let start = Instant::now();
    loop {
        let (status, body) = get(&addr, &format!("/campaigns/{id}")).expect("status");
        assert_eq!(status, 200, "{body}");
        if body.contains("\"complete\":true") {
            break;
        }
        let (code, _) = get(&addr, &format!("/campaigns/{id}/aggregate")).expect("early fetch");
        assert_eq!(code, 409, "aggregate must refuse while running");
        assert!(
            start.elapsed() < Duration::from_secs(300),
            "campaign did not complete: {body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let (status, agg) = get(&addr, &format!("/campaigns/{id}/aggregate")).expect("aggregate");
    assert_eq!(status, 200);
    assert_eq!(agg, reference.aggregate_csv, "HTTP aggregate differs");
    let (status, raw) = get(&addr, &format!("/campaigns/{id}/raw")).expect("raw");
    assert_eq!(status, 200);
    assert_eq!(raw, reference.raw_csv, "HTTP raw CSV differs");

    let (status, _) = get(&addr, "/campaigns/ffffffffffffffff").expect("unknown id");
    assert_eq!(status, 404);
    let (status, _) = post(&addr, "/campaigns", "{not json").expect("bad spec");
    assert_eq!(status, 400);
    let (status, _) = get(&addr, "/nope").expect("bad path");
    assert_eq!(status, 404);

    daemon.shutdown();
    server.join().expect("server thread").expect("serve exits");
    let _ = fs::remove_dir_all(&root);
}
