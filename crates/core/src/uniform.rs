//! Scheduling on *uniform* machines — processors of different speeds.
//!
//! "The heterogeneity of computational units or communication links can
//! also be considered by uniform or unrelated processors for instance"
//! (§2.2). Inside a cluster the paper's heterogeneity is *weak* (same
//! family, different clock generations); this module provides the
//! corresponding sequential-job machinery:
//!
//! * [`uniform_list_schedule`] — greedy **minimum completion time** (MCT):
//!   every job goes to the machine finishing it earliest, honouring
//!   release dates; with LPT ordering this is the classical uniform-machine
//!   heuristic;
//! * [`UniformSchedule`] — its own representation and validator, because
//!   execution times depend on the *machine*, not only the job (a
//!   `len/speed` check replaces the identical-machine shape check).
//!
//! Moldable jobs on uniform machines reduce to this after allotment
//! selection on the *host cluster's* speed (the `lsps-grid` layer does
//! exactly that scaling).

use std::collections::HashMap;

use lsps_des::{Dur, Time};
use lsps_metrics::CompletedJob;
use lsps_workload::{Job, JobId, JobKind};

use crate::list::JobOrder;

/// One job placed on one speeded machine.
#[derive(Clone, Debug, PartialEq)]
pub struct UniformAssignment {
    /// The job.
    pub job: JobId,
    /// Machine index (into the speed vector).
    pub machine: usize,
    /// Start time.
    pub start: Time,
    /// Completion time = start + ⌈len / speed⌉.
    pub end: Time,
}

/// A schedule over machines of given relative speeds.
#[derive(Clone, Debug, PartialEq)]
pub struct UniformSchedule {
    speeds: Vec<f64>,
    assignments: Vec<UniformAssignment>,
}

/// Validation failures for uniform schedules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UniformError {
    /// Two jobs overlap on the same machine.
    Overlap(JobId, JobId),
    /// A job starts before its release.
    EarlyStart(JobId),
    /// An assignment's span differs from the speed-scaled execution time.
    WrongShape(JobId),
    /// Unknown machine index.
    BadMachine(JobId),
    /// A job is missing or duplicated.
    Cardinality(JobId),
}

impl UniformSchedule {
    /// Assemble a schedule from raw parts (unchecked here — run
    /// [`validate`](UniformSchedule::validate) before consuming it). This
    /// is how external tooling and property tests build candidate or
    /// deliberately-corrupted schedules.
    pub fn from_parts(speeds: Vec<f64>, assignments: Vec<UniformAssignment>) -> UniformSchedule {
        assert!(!speeds.is_empty(), "a machine needs at least one processor");
        UniformSchedule {
            speeds,
            assignments,
        }
    }

    /// Expected span of `job` on machine `m` (ceiling of `len / speed`).
    fn expected_span(speeds: &[f64], m: usize, job: &Job) -> Dur {
        job.time_on(1)
            .scale_ceil(1.0 / speeds[m])
            .max(Dur::from_ticks(1))
    }

    /// The machine speeds.
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// The assignments, in insertion order.
    pub fn assignments(&self) -> &[UniformAssignment] {
        &self.assignments
    }

    /// Latest completion.
    pub fn makespan(&self) -> Time {
        self.assignments
            .iter()
            .map(|a| a.end)
            .fold(Time::ZERO, Time::max)
    }

    /// Per-job records (each runs on one processor).
    pub fn completed(&self, jobs: &[Job]) -> Vec<CompletedJob> {
        let by_id: HashMap<JobId, &Job> = jobs.iter().map(|j| (j.id, j)).collect();
        self.assignments
            .iter()
            .map(|a| {
                let job = by_id
                    .get(&a.job)
                    .unwrap_or_else(|| panic!("unknown {}", a.job));
                CompletedJob::from_job(job, a.start, a.end, 1)
            })
            .collect()
    }

    /// Validate: machine-disjointness, release dates, speed-scaled spans,
    /// one assignment per job.
    pub fn validate(&self, jobs: &[Job]) -> Result<(), UniformError> {
        let by_id: HashMap<JobId, &Job> = jobs.iter().map(|j| (j.id, j)).collect();
        let mut seen: HashMap<JobId, ()> = HashMap::new();
        for a in &self.assignments {
            let job = by_id.get(&a.job).ok_or(UniformError::Cardinality(a.job))?;
            if seen.insert(a.job, ()).is_some() {
                return Err(UniformError::Cardinality(a.job));
            }
            if a.machine >= self.speeds.len() {
                return Err(UniformError::BadMachine(a.job));
            }
            if a.start < job.release {
                return Err(UniformError::EarlyStart(a.job));
            }
            if a.end - a.start != Self::expected_span(&self.speeds, a.machine, job) {
                return Err(UniformError::WrongShape(a.job));
            }
        }
        for j in jobs {
            if !seen.contains_key(&j.id) {
                return Err(UniformError::Cardinality(j.id));
            }
        }
        // Per-machine overlap sweep.
        let mut by_machine: HashMap<usize, Vec<&UniformAssignment>> = HashMap::new();
        for a in &self.assignments {
            by_machine.entry(a.machine).or_default().push(a);
        }
        for list in by_machine.values_mut() {
            list.sort_by_key(|a| (a.start, a.end, a.job));
            for w in list.windows(2) {
                if w[1].start < w[0].end {
                    return Err(UniformError::Overlap(w[0].job, w[1].job));
                }
            }
        }
        Ok(())
    }
}

/// Greedy minimum-completion-time scheduling of sequential jobs on
/// machines of the given `speeds`: in priority order, each job goes where
/// it finishes earliest (slow machines lose ties naturally).
///
/// # Panics
/// If a job needs more than one processor or `speeds` is empty /
/// non-positive.
pub fn uniform_list_schedule(jobs: &[Job], speeds: &[f64], order: JobOrder) -> UniformSchedule {
    assert!(!speeds.is_empty() && speeds.iter().all(|&s| s > 0.0));
    for j in jobs {
        assert!(
            matches!(j.kind, JobKind::Rigid { procs: 1, .. }),
            "uniform_list_schedule handles sequential jobs; job {} is not",
            j.id
        );
    }
    let mut items: Vec<(&Job, usize)> = jobs.iter().map(|j| (j, 1usize)).collect();
    // Reuse the rigid orderings (allotment 1).
    match order {
        JobOrder::Fcfs => items.sort_by_key(|(j, _)| (j.release, j.id)),
        JobOrder::Lpt => items.sort_by_key(|(j, _)| (std::cmp::Reverse(j.time_on(1)), j.id)),
        JobOrder::Spt => items.sort_by_key(|(j, _)| (j.time_on(1), j.id)),
        JobOrder::WeightDensity => items.sort_by(|(a, _), (b, _)| {
            let da = a.weight / a.time_on(1).ticks().max(1) as f64;
            let db = b.weight / b.time_on(1).ticks().max(1) as f64;
            db.partial_cmp(&da).expect("finite").then(a.id.cmp(&b.id))
        }),
    }
    let mut free = vec![Time::ZERO; speeds.len()];
    let mut sched = UniformSchedule {
        speeds: speeds.to_vec(),
        assignments: Vec::new(),
    };
    for (job, _) in items {
        let mut best: Option<(Time, Time, usize)> = None; // (end, start, machine)
        for (mi, &f) in free.iter().enumerate() {
            let start = f.max(job.release);
            let end = start + UniformSchedule::expected_span(speeds, mi, job);
            // Ties: earlier end, then *faster* machine (lower span), then
            // lower index — deterministic.
            if best.is_none_or(|(be, bs, bm)| (end, start, mi) < (be, bs, bm)) {
                best = Some((end, start, mi));
            }
        }
        let (end, start, machine) = best.expect("speeds non-empty");
        free[machine] = end;
        sched.assignments.push(UniformAssignment {
            job: job.id,
            machine,
            start,
            end,
        });
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_metrics::Criteria;

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    #[test]
    fn fast_machine_attracts_work() {
        // Speeds 2 and 1: a lone job must pick the fast machine.
        let jobs = vec![Job::sequential(1, d(100))];
        let s = uniform_list_schedule(&jobs, &[1.0, 2.0], JobOrder::Fcfs);
        assert_eq!(s.validate(&jobs), Ok(()));
        assert_eq!(s.assignments()[0].machine, 1);
        assert_eq!(s.makespan(), Time::from_ticks(50));
    }

    #[test]
    fn mct_balances_speed_weighted() {
        // 3 equal jobs on speeds (2, 1): two go fast, one slow; makespan
        // = max(2·100/2, 100/1) = 100.
        let jobs: Vec<Job> = (0..3).map(|i| Job::sequential(i, d(100))).collect();
        let s = uniform_list_schedule(&jobs, &[2.0, 1.0], JobOrder::Lpt);
        assert_eq!(s.validate(&jobs), Ok(()));
        assert_eq!(s.makespan(), Time::from_ticks(100));
        let on_fast = s.assignments().iter().filter(|a| a.machine == 0).count();
        assert_eq!(on_fast, 2);
    }

    #[test]
    fn identical_speeds_match_identical_machine_list() {
        use crate::list::list_schedule;
        let jobs: Vec<Job> = (0..8).map(|i| Job::sequential(i, d(50 + i * 10))).collect();
        let uni = uniform_list_schedule(&jobs, &[1.0; 4], JobOrder::Lpt);
        let idm = list_schedule(&jobs, 4, JobOrder::Lpt);
        assert_eq!(uni.validate(&jobs), Ok(()));
        assert_eq!(uni.makespan(), idm.makespan());
    }

    #[test]
    fn release_dates_honoured() {
        let jobs = vec![Job::sequential(1, d(10)).released_at(Time::from_ticks(500))];
        let s = uniform_list_schedule(&jobs, &[1.0, 3.0], JobOrder::Fcfs);
        assert!(s.assignments()[0].start >= Time::from_ticks(500));
        assert_eq!(s.validate(&jobs), Ok(()));
    }

    #[test]
    fn lpt_beats_fcfs_on_skewed_speeds() {
        // Long jobs placed first grab the fast machines; FCFS can strand a
        // long job on the slow machine.
        let jobs = vec![
            Job::sequential(1, d(10)),
            Job::sequential(2, d(10)),
            Job::sequential(3, d(1000)),
        ];
        let lpt = uniform_list_schedule(&jobs, &[10.0, 0.1], JobOrder::Lpt);
        let fcfs = uniform_list_schedule(&jobs, &[10.0, 0.1], JobOrder::Fcfs);
        assert!(lpt.makespan() <= fcfs.makespan());
        // The giant must land on the fast machine under LPT.
        let giant = lpt
            .assignments()
            .iter()
            .find(|a| a.job == JobId(3))
            .unwrap();
        assert_eq!(giant.machine, 0);
    }

    #[test]
    fn validation_catches_wrong_speed_scaling() {
        let jobs = vec![Job::sequential(1, d(100))];
        let bad = UniformSchedule {
            speeds: vec![2.0],
            assignments: vec![UniformAssignment {
                job: JobId(1),
                machine: 0,
                start: Time::ZERO,
                end: Time::from_ticks(100), // should be 50 at speed 2
            }],
        };
        assert_eq!(bad.validate(&jobs), Err(UniformError::WrongShape(JobId(1))));
    }

    #[test]
    fn validation_catches_machine_overlap() {
        let jobs = vec![Job::sequential(1, d(100)), Job::sequential(2, d(100))];
        let bad = UniformSchedule {
            speeds: vec![1.0],
            assignments: vec![
                UniformAssignment {
                    job: JobId(1),
                    machine: 0,
                    start: Time::ZERO,
                    end: Time::from_ticks(100),
                },
                UniformAssignment {
                    job: JobId(2),
                    machine: 0,
                    start: Time::from_ticks(50),
                    end: Time::from_ticks(150),
                },
            ],
        };
        assert_eq!(
            bad.validate(&jobs),
            Err(UniformError::Overlap(JobId(1), JobId(2)))
        );
    }

    #[test]
    fn criteria_extraction_works() {
        let jobs: Vec<Job> = (0..4).map(|i| Job::sequential(i, d(100))).collect();
        let s = uniform_list_schedule(&jobs, &[1.0, 0.5], JobOrder::Spt);
        assert_eq!(s.validate(&jobs), Ok(()));
        let crit = Criteria::evaluate(&s.completed(&jobs));
        assert_eq!(crit.n, 4);
        assert!(crit.cmax > 0.0);
    }

    #[test]
    fn weak_heterogeneity_close_to_homogeneous() {
        // The paper's point: ±10% clock spread barely moves the makespan
        // relative to the mean-speed homogeneous machine.
        let jobs: Vec<Job> = (0..40).map(|i| Job::sequential(i, d(100))).collect();
        let hetero = uniform_list_schedule(&jobs, &[0.9, 0.95, 1.0, 1.05, 1.1], JobOrder::Lpt);
        assert_eq!(hetero.validate(&jobs), Ok(()));
        let homo = uniform_list_schedule(&jobs, &[1.0; 5], JobOrder::Lpt);
        let ratio = hetero.makespan().ticks() as f64 / homo.makespan().ticks() as f64;
        assert!((0.85..1.15).contains(&ratio), "ratio {ratio}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// MCT always validates and never beats the speed-aware area bound
        /// `Σ len / Σ speed`.
        #[test]
        fn mct_valid_and_bounded(
            lens in prop::collection::vec(1u64..1_000, 1..40),
            speeds in prop::collection::vec(0.2f64..4.0, 1..8),
        ) {
            let jobs: Vec<Job> = lens.iter().enumerate()
                .map(|(i, &l)| Job::sequential(i as u64, Dur::from_ticks(l)))
                .collect();
            let s = uniform_list_schedule(&jobs, &speeds, JobOrder::Lpt);
            prop_assert_eq!(s.validate(&jobs), Ok(()));
            let total_len: f64 = lens.iter().map(|&l| l as f64).sum();
            let total_speed: f64 = speeds.iter().sum();
            prop_assert!(
                s.makespan().ticks() as f64 >= total_len / total_speed - 1.0,
                "makespan below the speed-aware area bound"
            );
        }
    }
}
