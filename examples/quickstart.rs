//! Quickstart: generate a workload, pick a policy, schedule, measure.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use lsps::prelude::*;

fn main() {
    // The paper's Fig. 2 setting: a cluster of 100 identical machines.
    let platform = Platform::uniform("demo", 100);
    let m = platform.total_procs();

    // 200 on-line moldable jobs (log-uniform work, mixed penalty models).
    let mut rng = SimRng::seed_from(42);
    let jobs = WorkloadSpec::fig2_parallel(200).generate(m, &mut rng);

    // Ask the advisor which policy fits a moldable workload when both
    // makespan and weighted completion time matter.
    let rec = advise(Application::Moldable, Objective::BiCriteria, true);
    println!("advisor: {:?} — {}", rec.policy, rec.rationale);

    // Run it.
    let schedule = bicriteria_schedule(&jobs, m, BiCriteriaParams::default());
    schedule
        .validate(&jobs)
        .expect("schedules are always validated");

    // Measure every §3 criterion.
    let criteria = Criteria::evaluate(&schedule.completed(&jobs));
    let cmax_lb = cmax_lower_bound(&jobs, m).as_secs_f64();
    let wsum_lb = wsum_lower_bound(&jobs, m);
    println!("jobs          : {}", criteria.n);
    println!(
        "makespan      : {:.0} s ({:.2}x the lower bound)",
        criteria.cmax,
        criteria.cmax / cmax_lb
    );
    println!(
        "sum w_i C_i   : {:.0} ({:.2}x the lower bound)",
        criteria.weighted_sum_completion,
        criteria.weighted_sum_completion / wsum_lb
    );
    println!("mean flow     : {:.0} s", criteria.mean_flow);
    println!("max slowdown  : {:.1}", criteria.max_slowdown);
    println!("utilization   : {:.1}%", criteria.utilization(m) * 100.0);
}
