//! Per-community fairness (§5.2 of the paper).
//!
//! "Another important point is to guarantee a kind of fairness between the
//! different communities. Each computing resource was bought by its
//! respective community […] we should make sure that making it available to
//! others does not make them loose too much."
//!
//! [`per_user`] aggregates criteria per community; [`jain_index`] condenses
//! a vector of per-community figures into Jain's fairness index
//! `(Σx)² / (n·Σx²)` ∈ `(0, 1]`, 1 meaning perfectly even.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use lsps_workload::UserId;

use crate::completed::CompletedJob;

/// Aggregated outcome for one user/community.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UserReport {
    /// The community.
    pub user: UserId,
    /// Number of completed jobs.
    pub n: usize,
    /// Mean flow time (the paper's stretch), seconds.
    pub mean_flow: f64,
    /// Mean normalized slowdown.
    pub mean_slowdown: f64,
    /// Total work area consumed, CPU-seconds.
    pub area: f64,
}

/// Aggregate per community, in ascending `UserId` order.
pub fn per_user(jobs: &[CompletedJob]) -> Vec<UserReport> {
    let mut acc: BTreeMap<UserId, (usize, f64, f64, f64)> = BTreeMap::new();
    for j in jobs {
        let e = acc.entry(j.user).or_insert((0, 0.0, 0.0, 0.0));
        e.0 += 1;
        e.1 += j.flow().as_secs_f64();
        e.2 += j.slowdown();
        e.3 += j.area().as_secs_f64();
    }
    acc.into_iter()
        .map(|(user, (n, flow, slow, area))| UserReport {
            user,
            n,
            mean_flow: flow / n as f64,
            mean_slowdown: slow / n as f64,
            area,
        })
        .collect()
}

/// Jain's fairness index over non-negative figures (at least one positive).
/// 1.0 = perfectly fair; `1/n` = maximally concentrated.
pub fn jain_index(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "jain_index of an empty vector");
    assert!(xs.iter().all(|&x| x >= 0.0), "negative input");
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    assert!(sum > 0.0, "jain_index needs at least one positive value");
    sum * sum / (xs.len() as f64 * sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_des::{Dur, Time};
    use lsps_workload::Job;

    fn rec(id: u64, user: u32, len_s: u64) -> CompletedJob {
        let j = Job::sequential(id, Dur::from_secs(len_s)).with_user(UserId(user));
        CompletedJob::from_job(&j, Time::ZERO, Time::from_secs(len_s), 1)
    }

    #[test]
    fn aggregates_by_user() {
        let recs = vec![rec(1, 0, 10), rec(2, 1, 20), rec(3, 0, 30)];
        let reports = per_user(&recs);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].user, UserId(0));
        assert_eq!(reports[0].n, 2);
        assert!((reports[0].mean_flow - 20.0).abs() < 1e-9);
        assert!((reports[0].area - 40.0).abs() < 1e-9);
        assert_eq!(reports[1].n, 1);
        assert!((reports[1].mean_flow - 20.0).abs() < 1e-9);
    }

    #[test]
    fn jain_extremes() {
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let concentrated = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((concentrated - 0.25).abs() < 1e-12);
        let mid = jain_index(&[1.0, 2.0]);
        assert!((0.25..1.0).contains(&mid));
    }

    #[test]
    #[should_panic]
    fn jain_rejects_all_zero() {
        jain_index(&[0.0, 0.0]);
    }
}
