//! Shared plumbing for the experiment binaries: the scenario runner
//! ([`runner::ExperimentRunner`]), result files and tables.
//!
//! Every binary writes machine-readable CSV under `results/` (created at
//! the workspace root when run from inside it) and a human-readable table
//! on stdout. EXPERIMENTS.md references both.

use std::fs;
use std::path::{Path, PathBuf};

pub mod runner;

pub use runner::{Cell, Executor, ExperimentRunner, PlatformCase, WorkloadCase};

/// Resolve (and create) the results directory: the nearest ancestor of the
/// current directory that looks like the workspace root (has `Cargo.toml`
/// and `crates/`), falling back to the current directory, so experiment
/// binaries work from any crate directory.
pub fn results_dir() -> PathBuf {
    let cwd = std::env::current_dir().expect("cwd");
    let base = cwd
        .ancestors()
        .find(|c| c.join("Cargo.toml").exists() && c.join("crates").exists())
        .unwrap_or(&cwd)
        .to_path_buf();
    let dir = base.join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Atomically write `content` to `dir/<name>`: the bytes go to a hidden
/// sibling temp file first and land under the final name via `rename`, so a
/// reader (or a crash mid-write) never observes a torn or half-replaced
/// file — long sweeps re-running into the same `results/` replace each CSV
/// in one step instead of truncating it for the duration of the write.
pub fn write_file_atomic(dir: &Path, name: &str, content: &str) -> PathBuf {
    let path = dir.join(name);
    // Per-process temp name: two concurrent writers of the same CSV must
    // not share a staging file, or one could publish the other's torn
    // half-write — last rename wins instead.
    let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
    fs::write(&tmp, content).expect("write temp results file");
    fs::rename(&tmp, &path).expect("rename temp results file into place");
    path
}

/// Write CSV content to `results/<name>` (atomically — see
/// [`write_file_atomic`]) and report the path on stdout.
pub fn write_csv(name: &str, content: &str) {
    let path = write_file_atomic(&results_dir(), name, content);
    println!("\n[written] {}", path.display());
}

/// Fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given headers.
    pub fn new(headers: &[&str]) -> Table {
        let mut t = Table {
            widths: headers.iter().map(|h| h.len()).collect(),
            rows: Vec::new(),
        };
        t.row(headers.iter().map(|s| s.to_string()).collect());
        t
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.widths.len(), "ragged table row");
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Render with a separator under the header.
    pub fn print(&self) {
        for (i, row) in self.rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&self.widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", line.join("  "));
            if i == 0 {
                let sep: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
                println!("{}", sep.join("  "));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_wholesale_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("lsps-atomic-write-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("temp dir");
        let p1 = write_file_atomic(&dir, "out.csv", "first,version\n");
        assert_eq!(fs::read_to_string(&p1).unwrap(), "first,version\n");
        // Re-writing the same name replaces the content in one step…
        let p2 = write_file_atomic(&dir, "out.csv", "second\n");
        assert_eq!(p1, p2);
        assert_eq!(fs::read_to_string(&p2).unwrap(), "second\n");
        // …and no staging file outlives the call.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "staging files left behind: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn table_aligns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["12345".into(), "1".into()]);
        t.print(); // smoke: no panic, widths grow
        assert_eq!(t.widths, vec![5, 4]);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_rejected() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
