//! Scheduling mixes of rigid and moldable jobs (§5.1 of the paper).
//!
//! "So that means we actually have to deal with a mix of moldable and rigid
//! jobs. There are different possible ideas to solve this problem":
//!
//! 1. [`MixedStrategy::SeparatePhases`] — "separate rigid and moldable jobs
//!    and schedule one category after the other": rigid first with
//!    conservative backfilling, moldable afterwards with batched MRT.
//! 2. [`MixedStrategy::PreallocateThenRigid`] — "calculate a-priori an
//!    allocation for the moldable jobs, and then apply a rigid scheduling
//!    algorithm on the resulting rigid jobs".
//! 3. [`MixedStrategy::RigidIntoBatches`] — "modify the bi-criteria
//!    algorithm in order to schedule each rigid job in the first batch in
//!    which it fits" — [`crate::bicriteria`] already admits rigid jobs at
//!    their fixed width, which is exactly this rule.
//!
//! The `models_compare` experiment quantifies the §5.1 remark that "these
//! ideas probably lead to an increased performance ratio".

use lsps_workload::{Job, JobKind};

use crate::allot::{choose_allotment, AllotRule};
use crate::backfill::{backfill_schedule, BackfillPolicy};
use crate::batch::batch_online;
use crate::bicriteria::{bicriteria_schedule, BiCriteriaParams};
use crate::list::list_schedule_allotted;
use crate::list::JobOrder;
use crate::mrt::{mrt_schedule, MrtParams};
use crate::schedule::Schedule;

/// The three §5.1 strategies for rigid + moldable workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MixedStrategy {
    /// Rigid jobs first (conservative backfilling), moldable afterwards
    /// (batched MRT starting at the rigid makespan).
    SeparatePhases,
    /// Fix moldable allotments a-priori (balanced rule), then schedule
    /// everything as rigid jobs with conservative backfilling.
    PreallocateThenRigid,
    /// Feed the mixed set to the bi-criteria doubling batches; rigid jobs
    /// enter the first batch whose deadline admits them.
    RigidIntoBatches,
}

/// Schedule a mixed rigid/moldable workload on `m` processors.
pub fn mixed_schedule(jobs: &[Job], m: usize, strategy: MixedStrategy) -> Schedule {
    match strategy {
        MixedStrategy::SeparatePhases => {
            let rigid: Vec<Job> = jobs
                .iter()
                .filter(|j| matches!(j.kind, JobKind::Rigid { .. }))
                .cloned()
                .collect();
            let moldable: Vec<Job> = jobs
                .iter()
                .filter(|j| !matches!(j.kind, JobKind::Rigid { .. }))
                .cloned()
                .collect();
            let mut sched = backfill_schedule(&rigid, m, &[], BackfillPolicy::Conservative);
            let rigid_end = sched.makespan();
            if !moldable.is_empty() {
                // Moldable phase starts once the rigid phase is over.
                let shifted: Vec<Job> = moldable
                    .iter()
                    .map(|j| {
                        let mut j = j.clone();
                        j.release = j.release.max(rigid_end);
                        j
                    })
                    .collect();
                let phase2 =
                    batch_online(&shifted, m, |b, m| mrt_schedule(b, m, MrtParams::default()));
                sched.extend(phase2);
            }
            sched
        }
        MixedStrategy::PreallocateThenRigid => {
            // A-priori allotments, then one rigid pass. Backfilling needs
            // rigid jobs, so materialize the chosen allotments.
            let items: Vec<(&Job, usize)> = jobs
                .iter()
                .map(|j| (j, choose_allotment(j, m, jobs.len(), AllotRule::Balanced)))
                .collect();
            if jobs.iter().all(|j| j.release == lsps_des::Time::ZERO) {
                list_schedule_allotted(&items, m, JobOrder::Lpt)
            } else {
                // With releases, replay through the conservative backfiller
                // on rigidified clones (ids preserved).
                let rigidified: Vec<Job> = items
                    .iter()
                    .map(|(j, k)| {
                        let mut c = (*j).clone();
                        c.kind = JobKind::Rigid {
                            procs: *k,
                            len: j.time_on(*k),
                        };
                        c
                    })
                    .collect();
                let s = backfill_schedule(&rigidified, m, &[], BackfillPolicy::Conservative);
                // Re-emit against the original jobs (same ids, same shapes).
                let mut out = Schedule::new(m);
                for a in s.assignments() {
                    out.push(a.clone());
                }
                out
            }
        }
        MixedStrategy::RigidIntoBatches => {
            bicriteria_schedule(jobs, m, BiCriteriaParams::default())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_des::{Dur, SimRng, Time};
    use lsps_metrics::cmax_lower_bound;
    use lsps_workload::{MoldableProfile, SpeedupModel};

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    fn mixed_workload(seed: u64, n: usize, m: usize) -> Vec<Job> {
        let mut rng = SimRng::seed_from(seed);
        (0..n)
            .map(|i| {
                let seq = rng.int_range(50, 1500);
                let job = if rng.chance(0.4) {
                    Job::rigid(i as u64, rng.int_range(1, m as u64 / 2) as usize, d(seq))
                } else {
                    Job::moldable(
                        i as u64,
                        MoldableProfile::from_model(
                            d(seq),
                            &SpeedupModel::Amdahl {
                                seq_fraction: rng.range(0.0, 0.2),
                            },
                            rng.int_range(1, m as u64) as usize,
                        ),
                    )
                };
                job.released_at(Time::from_ticks(rng.int_range(0, 500)))
            })
            .collect()
    }

    #[test]
    fn all_strategies_produce_valid_schedules() {
        let m = 16;
        let jobs = mixed_workload(3, 30, m);
        for strategy in [
            MixedStrategy::SeparatePhases,
            MixedStrategy::PreallocateThenRigid,
            MixedStrategy::RigidIntoBatches,
        ] {
            let s = mixed_schedule(&jobs, m, strategy);
            assert_eq!(s.validate(&jobs), Ok(()), "{strategy:?}");
            assert_eq!(s.len(), jobs.len(), "{strategy:?}");
        }
    }

    #[test]
    fn separate_phases_orders_rigid_before_moldable() {
        let jobs = vec![
            Job::rigid(1, 2, d(100)),
            Job::moldable(
                2,
                MoldableProfile::from_model(d(100), &SpeedupModel::Linear, 4),
            ),
        ];
        let s = mixed_schedule(&jobs, 4, MixedStrategy::SeparatePhases);
        assert!(s.validate(&jobs).is_ok());
        let find = |id: u64| {
            s.assignments()
                .iter()
                .find(|a| a.job == lsps_workload::JobId(id))
                .unwrap()
                .clone()
        };
        assert!(
            find(2).start >= find(1).end,
            "moldable waits for rigid phase"
        );
    }

    #[test]
    fn integrated_strategies_beat_separate_phases_here() {
        // Separate phases wastes the holes of the rigid phase; on a random
        // mixed workload the integrated strategies should not be worse.
        let m = 16;
        let jobs = mixed_workload(11, 40, m);
        let sep = mixed_schedule(&jobs, m, MixedStrategy::SeparatePhases).makespan();
        let pre = mixed_schedule(&jobs, m, MixedStrategy::PreallocateThenRigid).makespan();
        assert!(pre <= sep, "preallocate {pre:?} vs separate {sep:?}");
    }

    #[test]
    fn ratios_reasonable_for_all_strategies() {
        let m = 16;
        let jobs = mixed_workload(7, 30, m);
        let lb = cmax_lower_bound(&jobs, m).ticks() as f64;
        for strategy in [
            MixedStrategy::SeparatePhases,
            MixedStrategy::PreallocateThenRigid,
            MixedStrategy::RigidIntoBatches,
        ] {
            let s = mixed_schedule(&jobs, m, strategy);
            let ratio = s.makespan().ticks() as f64 / lb;
            assert!(ratio <= 10.0, "{strategy:?}: ratio {ratio} looks broken");
        }
    }

    #[test]
    fn pure_rigid_and_pure_moldable_degenerate_cases() {
        let m = 8;
        let rigid_only: Vec<Job> = (0..10).map(|i| Job::rigid(i, 2, d(50))).collect();
        let moldable_only: Vec<Job> = (0..10)
            .map(|i| {
                Job::moldable(
                    i,
                    MoldableProfile::from_model(d(100), &SpeedupModel::Linear, 8),
                )
            })
            .collect();
        for strategy in [
            MixedStrategy::SeparatePhases,
            MixedStrategy::PreallocateThenRigid,
            MixedStrategy::RigidIntoBatches,
        ] {
            assert!(mixed_schedule(&rigid_only, m, strategy)
                .validate(&rigid_only)
                .is_ok());
            assert!(mixed_schedule(&moldable_only, m, strategy)
                .validate(&moldable_only)
                .is_ok());
        }
    }
}
