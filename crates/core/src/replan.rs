//! Incremental replanning: persistent planner state for event-driven
//! execution.
//!
//! The online executor calls [`crate::policy::Policy::schedule_pending`]
//! at every arrival/completion instant. The default implementation is a
//! *full replan*: rebuild a fresh [`Timeline`], re-book every live
//! commitment, re-place every reservation, then schedule the new batch —
//! O(live) work per event, O(n²) over a trace. For the backfill family
//! that rebuild is provably redundant, and this module removes it.
//!
//! # The dirty-window invariant
//!
//! A [`BackfillPlanner`] keeps **one** timeline alive across decisions and
//! maintains this invariant at every decision instant `now`:
//!
//! > the persistent profile is pointwise-equal on `[now, ∞)` to the
//! > profile the full replan would rebuild from scratch.
//!
//! Each event then only touches its *dirty window* — the new arrivals and
//! the bookings whose state actually changed — instead of the whole
//! pending set:
//!
//! * **Arrivals** are packed by the identical conservative/EASY pass the
//!   batch path uses ([`crate::backfill`]), on the persistent timeline.
//!   Every placement is booked at its *estimated* length during the pass
//!   (exactly what the batch pass sees) and truncated to its **true**
//!   length once the batch is placed — which is precisely the committed
//!   interval the full replan would have re-booked at the next event.
//! * **Completions** cost one heap pop: bookings expire off a
//!   `(true_end, id)` min-heap and are removed from the profile, replacing
//!   the full-path `Timeline::gc` scan. Removal only edits segments in
//!   `[start, true_end) ⊆ [0, now)`, so the invariant is untouched.
//! * **Reservations and pinned bookings** are booked once at
//!   construction. The first-fit processor choice for a reservation is
//!   stable across decisions (later commitments are always placed *around*
//!   the booked reservation, so they never claim its processors and never
//!   change which processors `take_first` sees free), so re-placing them
//!   per event — as the full replan does — always reproduces the same
//!   sets.
//!
//! Pointwise equality on `[now, ∞)` is all the passes can observe: every
//! query they issue (`earliest_slot`, `free_during`, the shadow walk)
//! starts at or after `now`, and two coalesced step functions that agree
//! pointwise from `now` on expose identical boundary sets there. Hence
//! the planner's placements are **bit-identical** to the full replan's —
//! the property the differential tests in `lsps_scenario` pin down, with
//! the retained full-replan path as the oracle.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use lsps_des::Time;
use lsps_platform::{BookingId, BookingKind, Timeline};
use lsps_workload::{Job, JobKind};

use crate::backfill::{
    book_reservations, conservative_pass, easy_pass, fcfs_order, BackfillPolicy,
};
use crate::policy::PolicyCtx;
use crate::schedule::Schedule;

/// Persistent incremental scheduler state behind
/// [`Policy::incremental_planner`](crate::policy::Policy::incremental_planner).
///
/// The contract mirrors `schedule_pending` split across calls: the caller
/// invokes [`advance`](IncrementalPlanner::advance) then
/// [`plan`](IncrementalPlanner::plan) at every decision instant with
/// non-decreasing `now`, handing over only the **newly pending** jobs
/// (already [`prepare`](crate::policy::Policy::prepare)d); the returned
/// schedule must equal what the full-replan path would produce, and its
/// assignments are committed by the caller verbatim.
pub trait IncrementalPlanner {
    /// Release everything that completed at or before `now`. Must be
    /// called with non-decreasing `now`.
    fn advance(&mut self, now: Time);

    /// Place `pending` (all arrived: every release `<= now`) around all
    /// previously planned work, no earlier than `now`, and absorb the
    /// placements into the planner state at their true lengths. The result
    /// lands in `out`, which the caller hands back cleared each decision —
    /// planners run once per event, so the schedule buffer is recycled
    /// rather than reallocated.
    fn plan(&mut self, pending: &[Job], now: Time, out: &mut Schedule);

    /// Jobs examined across all [`plan`](IncrementalPlanner::plan) calls —
    /// the instrumentation the O(dirty) regression tests read. A full
    /// replan would count O(live + batch) per event; an incremental
    /// planner counts O(batch).
    fn touched(&self) -> u64;

    /// `(booking, true_end)` pairs created by the **last**
    /// [`plan`](IncrementalPlanner::plan) call, aligned 1:1 with the
    /// placements it wrote into `out` (insertion order). Failure-aware
    /// executors read this to associate each commitment with its planner
    /// booking, so a later kill can name the booking to evict.
    ///
    /// Default: volatility unsupported — fail loudly rather than let a
    /// failure-blind planner drift from the oracle.
    fn last_created(&self) -> &[(BookingId, Time)] {
        unimplemented!("this planner does not support node volatility")
    }

    /// Evict a still-live booking: the commitment behind it was killed by
    /// a node failure. This is the explicit relaxation of the
    /// "commitments are final" invariant — the booked interval leaves the
    /// profile *now*, and the planner must keep the dirty-window invariant
    /// against an oracle that no longer re-books the dead commitment.
    fn invalidate(&mut self, id: BookingId) {
        let _ = id;
        unimplemented!("this planner does not support node volatility")
    }

    /// Book a node outage: processor `node` is unavailable on
    /// `[start, end)`. The window expires off the profile at `end` exactly
    /// like a completed commitment, matching the full replan's `gc`.
    fn add_outage(&mut self, node: u32, start: Time, end: Time) {
        let _ = (node, start, end);
        unimplemented!("this planner does not support node volatility")
    }
}

/// [`IncrementalPlanner`] for the backfill family (conservative + EASY).
pub struct BackfillPlanner {
    flavour: BackfillPolicy,
    m: usize,
    factor: f64,
    /// The persistent planning timeline: pinned bookings + reservations +
    /// every commitment still alive, at true lengths.
    tl: Timeline,
    /// True completion of every job booking, a min-heap — the O(log live)
    /// replacement for the full path's per-event `gc` scan.
    expiry: BinaryHeap<Reverse<(Time, BookingId)>>,
    touched: u64,
    /// Scratch: release-bumped copies of the batch, reused across `plan`
    /// calls so the per-decision cost is the job copies, not a `Vec`
    /// allocation (rigid jobs are plain data — the copy itself is flat).
    bumped: Vec<Job>,
    /// Scratch: `(booking, true_end)` pairs the passes emit, reused
    /// alongside `bumped`.
    created: Vec<(BookingId, Time)>,
    /// Bookings evicted by [`IncrementalPlanner::invalidate`] whose expiry
    /// entry is still in the heap — `advance` skips these instead of
    /// demanding they be present, keeping the missing-booking panic for
    /// genuine bugs.
    invalidated: HashSet<BookingId>,
}

impl BackfillPlanner {
    /// Book the decision-independent state (pinned bookings, then
    /// reservations first-fit — the same order the batch path uses) once.
    ///
    /// # Panics
    /// On conflicting pinned bookings or unsatisfiable reservations, and
    /// if `ctx.estimate_factor` undershoots — the same contracts the
    /// batch path enforces per call.
    pub fn new(flavour: BackfillPolicy, m: usize, ctx: &PolicyCtx) -> BackfillPlanner {
        assert!(
            ctx.estimate_factor >= 1.0 && ctx.estimate_factor.is_finite(),
            "estimates must not undershoot (got factor {})",
            ctx.estimate_factor
        );
        let mut tl = Timeline::with_procs(m);
        for (i, p) in ctx.pinned.iter().enumerate() {
            tl.try_book(p.start, p.end, p.procs.clone(), BookingKind::Reservation)
                .unwrap_or_else(|e| panic!("pinned booking {i} conflicts: {e:?}"));
        }
        book_reservations(&mut tl, &ctx.reservations);
        BackfillPlanner {
            flavour,
            m,
            factor: ctx.estimate_factor,
            tl,
            expiry: BinaryHeap::new(),
            touched: 0,
            bumped: Vec::new(),
            created: Vec::new(),
            invalidated: HashSet::new(),
        }
    }
}

impl IncrementalPlanner for BackfillPlanner {
    fn advance(&mut self, now: Time) {
        while let Some(&Reverse((end, id))) = self.expiry.peek() {
            if end > now {
                break;
            }
            self.expiry.pop();
            if self.invalidated.remove(&id) {
                continue;
            }
            self.tl.remove(id).expect("expired booking still present");
        }
    }

    fn plan(&mut self, pending: &[Job], now: Time, out: &mut Schedule) {
        debug_assert!(
            out.is_empty(),
            "caller hands the scratch schedule back cleared"
        );
        // Clear even on the empty-batch path: `last_created` must describe
        // *this* call, never a stale predecessor.
        self.created.clear();
        if pending.is_empty() {
            return;
        }
        self.touched += pending.len() as u64;
        self.bumped.clear();
        self.bumped.extend(pending.iter().map(|j| {
            assert!(
                matches!(j.kind, JobKind::Rigid { .. }) && j.min_procs() <= self.m,
                "planner expects prepared rigid jobs fitting the machine; job {} is not",
                j.id
            );
            let mut j = j.clone();
            j.release = j.release.max(now);
            j
        }));
        let order = fcfs_order(&self.bumped);
        match self.flavour {
            BackfillPolicy::Conservative => {
                conservative_pass(&order, &mut self.tl, self.factor, out, &mut self.created)
            }
            BackfillPolicy::Easy => {
                easy_pass(&order, &mut self.tl, self.factor, out, &mut self.created)
            }
        }
        // Pin the batch at true lengths: the next decision must see exactly
        // the committed (true) intervals, not the estimate tails — that is
        // what the full replan re-books from its commitment table.
        for &(bk, true_end) in &self.created {
            self.tl.truncate(bk, true_end);
            // Zero-length work vanishes on truncation (and the EASY replay
            // may already have dropped it mid-pass) — nothing to expire.
            if self.tl.booking(bk).is_some() {
                self.expiry.push(Reverse((true_end, bk)));
            }
        }
    }

    fn touched(&self) -> u64 {
        self.touched
    }

    fn last_created(&self) -> &[(BookingId, Time)] {
        &self.created
    }

    fn invalidate(&mut self, id: BookingId) {
        self.tl
            .remove(id)
            .expect("invalidated booking still present");
        self.invalidated.insert(id);
    }

    fn add_outage(&mut self, node: u32, start: Time, end: Time) {
        assert!(end > start, "empty outage [{start:?}, {end:?})");
        let id = self
            .tl
            .try_book(
                start,
                end,
                lsps_platform::ProcSet::from_indices([node as usize]),
                BookingKind::Reservation,
            )
            .unwrap_or_else(|e| {
                panic!("outage [{start:?}, {end:?}) on node {node} collides: {e:?}")
            });
        self.expiry.push(Reverse((end, id)));
    }
}
