//! Processor availability over time: bookings, reservations, holes.
//!
//! A [`Timeline`] tracks which processors of a capacity set are busy during
//! which intervals. It is the common substrate for
//!
//! * running jobs (a booking per started job),
//! * **advance reservations** (§5.1 of the paper: "a given number of
//!   processors in a given time window"), booked ahead of time,
//! * backfilling (EASY books only the head job's reservation, conservative
//!   books every queued job),
//! * the CiGri best-effort layer (§5.2), which enumerates the *holes* of the
//!   local schedules via [`Timeline::free_profile`] and fills them with
//!   killable grid jobs.
//!
//! Invariant enforced at booking time: a booking's processors are a subset of
//! capacity and disjoint from every time-overlapping booking. Everything
//! downstream (schedule validity, utilization accounting) relies on it.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use lsps_des::{Dur, Time};

use crate::procset::ProcSet;

/// Why an interval is booked — used by policies to decide what may be
/// displaced (best-effort bookings are killable, the others are not).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BookingKind {
    /// A regular local job occupying its allocation.
    Job,
    /// An advance reservation (§5.1): processors blocked for a time window.
    Reservation,
    /// A best-effort grid job (§5.2): fills holes, killed on local demand.
    BestEffort,
}

/// One booked interval.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Booking {
    /// Start of the interval (inclusive).
    pub start: Time,
    /// End of the interval (exclusive).
    pub end: Time,
    /// Processors occupied.
    pub procs: ProcSet,
    /// What occupies them.
    pub kind: BookingKind,
}

impl Booking {
    fn overlaps(&self, start: Time, end: Time) -> bool {
        // An empty booking occupies nothing and never conflicts.
        self.start < self.end && self.start < end && start < self.end
    }
}

/// Handle to a booking within a [`Timeline`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BookingId(u64);

/// Error returned by [`Timeline::try_book`] on an invalid booking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BookError {
    /// Requested processors are not all within the timeline capacity.
    OutsideCapacity,
    /// Requested processors collide with an existing booking.
    Conflict(BookingId),
    /// `end < start`.
    NegativeInterval,
}

impl fmt::Display for BookError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BookError::OutsideCapacity => write!(f, "procs outside timeline capacity"),
            BookError::Conflict(id) => write!(f, "procs conflict with booking {id:?}"),
            BookError::NegativeInterval => write!(f, "end precedes start"),
        }
    }
}

impl std::error::Error for BookError {}

/// Availability calendar of a set of processors.
#[derive(Clone, Debug)]
pub struct Timeline {
    capacity: ProcSet,
    bookings: BTreeMap<BookingId, Booking>,
    next_id: u64,
}

impl Timeline {
    /// A timeline over the given capacity, initially all free.
    pub fn new(capacity: ProcSet) -> Self {
        Timeline {
            capacity,
            bookings: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// A timeline over processors `{0, …, m-1}`.
    pub fn with_procs(m: usize) -> Self {
        Timeline::new(ProcSet::full(m))
    }

    /// The capacity set.
    pub fn capacity(&self) -> &ProcSet {
        &self.capacity
    }

    /// Number of live bookings.
    pub fn n_bookings(&self) -> usize {
        self.bookings.len()
    }

    /// Look up a booking.
    pub fn booking(&self, id: BookingId) -> Option<&Booking> {
        self.bookings.get(&id)
    }

    /// Iterate over all bookings (deterministic id order).
    pub fn bookings(&self) -> impl Iterator<Item = (BookingId, &Booking)> {
        self.bookings.iter().map(|(&id, b)| (id, b))
    }

    /// Book `procs` during `[start, end)`, validating capacity and
    /// conflict-freedom. Zero-length intervals are accepted and occupy
    /// nothing.
    pub fn try_book(
        &mut self,
        start: Time,
        end: Time,
        procs: ProcSet,
        kind: BookingKind,
    ) -> Result<BookingId, BookError> {
        if end < start {
            return Err(BookError::NegativeInterval);
        }
        if !procs.is_subset(&self.capacity) {
            return Err(BookError::OutsideCapacity);
        }
        if start < end {
            for (&id, b) in &self.bookings {
                if b.overlaps(start, end) && !b.procs.is_disjoint(&procs) {
                    return Err(BookError::Conflict(id));
                }
            }
        }
        let id = BookingId(self.next_id);
        self.next_id += 1;
        self.bookings.insert(
            id,
            Booking {
                start,
                end,
                procs,
                kind,
            },
        );
        Ok(id)
    }

    /// Like [`try_book`](Self::try_book) but panics on error — for call
    /// sites that just computed a free slot.
    pub fn book(&mut self, start: Time, end: Time, procs: ProcSet, kind: BookingKind) -> BookingId {
        self.try_book(start, end, procs, kind)
            .unwrap_or_else(|e| panic!("invalid booking [{start:?},{end:?}): {e}"))
    }

    /// Remove a booking (job completed early, reservation cancelled).
    pub fn remove(&mut self, id: BookingId) -> Option<Booking> {
        self.bookings.remove(&id)
    }

    /// Shorten a booking to end at `at` (kill semantics for best-effort
    /// jobs). If `at <= start` the booking is removed entirely. Returns the
    /// resulting booking state (with its possibly shortened end), or `None`
    /// if the id is unknown.
    pub fn truncate(&mut self, id: BookingId, at: Time) -> Option<Booking> {
        let b = self.bookings.get_mut(&id)?;
        if at <= b.start {
            return self.bookings.remove(&id);
        }
        if at < b.end {
            b.end = at;
        }
        Some(b.clone())
    }

    /// Drop every booking that ends at or before `now` (history no longer
    /// needed for feasibility). Utilization accounting across gc boundaries
    /// is the caller's responsibility.
    pub fn gc(&mut self, now: Time) {
        self.bookings.retain(|_, b| b.end > now);
    }

    /// Processors free at instant `t`.
    pub fn free_at(&self, t: Time) -> ProcSet {
        let mut free = self.capacity.clone();
        for b in self.bookings.values() {
            if b.start <= t && t < b.end {
                free.subtract(&b.procs);
            }
        }
        free
    }

    /// Processors free during the whole window `[start, end)`. For an empty
    /// window this degenerates to [`free_at`](Self::free_at)`(start)`.
    pub fn free_during(&self, start: Time, end: Time) -> ProcSet {
        if end <= start {
            return self.free_at(start);
        }
        let mut free = self.capacity.clone();
        for b in self.bookings.values() {
            if b.overlaps(start, end) {
                free.subtract(&b.procs);
            }
        }
        free
    }

    /// Earliest start `>= earliest` at which `width` processors are free for
    /// `dur`, together with the chosen processors (lowest free indices —
    /// the deterministic allocation rule). `None` iff `width` exceeds
    /// capacity.
    ///
    /// The free set over a sliding window only grows when a booking *ends*,
    /// so it suffices to test `earliest` and every booking end after it.
    pub fn earliest_slot(&self, earliest: Time, dur: Dur, width: usize) -> Option<(Time, ProcSet)> {
        self.earliest_slot_within(earliest, Time::MAX, dur, width)
    }

    /// [`earliest_slot`](Self::earliest_slot) restricted to starts
    /// `<= latest_start` (used to place jobs before a deadline, e.g. batch
    /// boundaries or reservation windows).
    pub fn earliest_slot_within(
        &self,
        earliest: Time,
        latest_start: Time,
        dur: Dur,
        width: usize,
    ) -> Option<(Time, ProcSet)> {
        if width > self.capacity.len() {
            return None;
        }
        if width == 0 {
            return Some((earliest, ProcSet::new()));
        }
        let mut candidates: Vec<Time> = self
            .bookings
            .values()
            .map(|b| b.end)
            .filter(|&e| e > earliest && e <= latest_start)
            .collect();
        candidates.push(earliest);
        candidates.sort_unstable();
        candidates.dedup();
        for t in candidates {
            let free = self.free_during(t, t.saturating_add(dur));
            if free.len() >= width {
                return Some((t, free.take_first(width)));
            }
        }
        None
    }

    /// Piecewise-constant free sets over `[from, to)`: the *holes* of the
    /// schedule. Segments with an empty free set are included (callers
    /// filter); consecutive segments with equal free sets are merged.
    pub fn free_profile(&self, from: Time, to: Time) -> Vec<(Time, Time, ProcSet)> {
        assert!(to >= from);
        let mut points: Vec<Time> = vec![from, to];
        for b in self.bookings.values() {
            if b.start > from && b.start < to {
                points.push(b.start);
            }
            if b.end > from && b.end < to {
                points.push(b.end);
            }
        }
        points.sort_unstable();
        points.dedup();
        let mut segments: Vec<(Time, Time, ProcSet)> = Vec::new();
        for w in points.windows(2) {
            let (s, e) = (w[0], w[1]);
            let free = self.free_at(s);
            match segments.last_mut() {
                Some(last) if last.2 == free && last.1 == s => last.1 = e,
                _ => segments.push((s, e, free)),
            }
        }
        segments
    }

    /// Fraction of the capacity×window rectangle `[from, to)` that is
    /// booked (all booking kinds).
    pub fn utilization(&self, from: Time, to: Time) -> f64 {
        assert!(to > from, "empty utilization window");
        let window = (to - from).ticks() as f64;
        let cap = self.capacity.len() as f64;
        if cap == 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .bookings
            .values()
            .map(|b| {
                let s = b.start.max(from);
                let e = b.end.min(to);
                if e > s {
                    (e - s).ticks() as f64 * b.procs.len() as f64
                } else {
                    0.0
                }
            })
            .sum();
        busy / (window * cap)
    }

    /// Latest end over all bookings (the timeline's makespan), or `from` if
    /// no booking exists.
    pub fn horizon(&self, from: Time) -> Time {
        self.bookings.values().map(|b| b.end).fold(from, Time::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }
    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    #[test]
    fn book_and_free() {
        let mut tl = Timeline::with_procs(4);
        let id = tl.book(t(10), t(20), ProcSet::range(0, 2), BookingKind::Job);
        assert_eq!(tl.free_at(t(5)), ProcSet::full(4));
        assert_eq!(tl.free_at(t(10)), ProcSet::range(2, 4));
        assert_eq!(tl.free_at(t(19)), ProcSet::range(2, 4));
        assert_eq!(tl.free_at(t(20)), ProcSet::full(4), "end is exclusive");
        tl.remove(id);
        assert_eq!(tl.free_at(t(15)), ProcSet::full(4));
    }

    #[test]
    fn conflicts_rejected() {
        let mut tl = Timeline::with_procs(4);
        tl.book(t(0), t(10), ProcSet::range(0, 2), BookingKind::Job);
        let err = tl
            .try_book(t(5), t(15), ProcSet::range(1, 3), BookingKind::Job)
            .unwrap_err();
        assert!(matches!(err, BookError::Conflict(_)));
        // Same procs, adjacent in time: fine (end exclusive).
        tl.try_book(t(10), t(15), ProcSet::range(0, 2), BookingKind::Job)
            .unwrap();
        // Outside capacity.
        let err = tl
            .try_book(t(0), t(1), ProcSet::range(3, 5), BookingKind::Job)
            .unwrap_err();
        assert_eq!(err, BookError::OutsideCapacity);
        // Negative interval.
        let err = tl
            .try_book(t(5), t(4), ProcSet::new(), BookingKind::Job)
            .unwrap_err();
        assert_eq!(err, BookError::NegativeInterval);
    }

    #[test]
    fn zero_length_bookings_occupy_nothing() {
        let mut tl = Timeline::with_procs(2);
        tl.book(t(5), t(5), ProcSet::range(0, 2), BookingKind::Job);
        // The same procs can be booked over that instant.
        tl.book(t(0), t(10), ProcSet::range(0, 2), BookingKind::Job);
        assert_eq!(tl.n_bookings(), 2);
    }

    #[test]
    fn free_during_window() {
        let mut tl = Timeline::with_procs(3);
        tl.book(t(10), t(20), ProcSet::range(0, 1), BookingKind::Job);
        tl.book(t(30), t(40), ProcSet::range(1, 2), BookingKind::Job);
        assert_eq!(tl.free_during(t(0), t(10)), ProcSet::full(3));
        assert_eq!(tl.free_during(t(5), t(15)), ProcSet::range(1, 3));
        assert_eq!(tl.free_during(t(15), t(35)), ProcSet::from_indices([2]));
        assert_eq!(tl.free_during(t(20), t(30)), ProcSet::full(3));
        // Degenerate window = instant.
        assert_eq!(tl.free_during(t(15), t(15)), ProcSet::range(1, 3));
    }

    #[test]
    fn earliest_slot_waits_for_ends() {
        let mut tl = Timeline::with_procs(2);
        tl.book(t(0), t(100), ProcSet::from_indices([0]), BookingKind::Job);
        tl.book(t(0), t(50), ProcSet::from_indices([1]), BookingKind::Job);
        // Width 1 becomes free at 50 (proc 1).
        let (start, procs) = tl.earliest_slot(t(0), d(10), 1).unwrap();
        assert_eq!(start, t(50));
        assert_eq!(procs, ProcSet::from_indices([1]));
        // Width 2 requires waiting until 100.
        let (start, procs) = tl.earliest_slot(t(0), d(10), 2).unwrap();
        assert_eq!(start, t(100));
        assert_eq!(procs, ProcSet::full(2));
        // Impossible width.
        assert_eq!(tl.earliest_slot(t(0), d(1), 3), None);
    }

    #[test]
    fn earliest_slot_fits_into_hole() {
        let mut tl = Timeline::with_procs(2);
        // Proc 0 busy [0,10) and [20,30): hole [10,20).
        tl.book(t(0), t(10), ProcSet::from_indices([0]), BookingKind::Job);
        tl.book(t(20), t(30), ProcSet::from_indices([0]), BookingKind::Job);
        tl.book(t(0), t(30), ProcSet::from_indices([1]), BookingKind::Job);
        // A 10-long width-1 job fits exactly in the hole.
        let (start, procs) = tl.earliest_slot(t(0), d(10), 1).unwrap();
        assert_eq!((start, procs), (t(10), ProcSet::from_indices([0])));
        // An 11-long job does not; it must wait until 30.
        let (start, _) = tl.earliest_slot(t(0), d(11), 1).unwrap();
        assert_eq!(start, t(30));
    }

    #[test]
    fn earliest_slot_respects_release_and_deadline() {
        let mut tl = Timeline::with_procs(1);
        tl.book(t(10), t(20), ProcSet::from_indices([0]), BookingKind::Job);
        let (start, _) = tl.earliest_slot(t(3), d(5), 1).unwrap();
        assert_eq!(start, t(3), "release honoured when free");
        // Latest start 15 excludes the post-booking candidate (20).
        assert_eq!(tl.earliest_slot_within(t(12), t(15), d(5), 1), None);
        let got = tl.earliest_slot_within(t(12), t(25), d(5), 1).unwrap();
        assert_eq!(got.0, t(20));
    }

    #[test]
    fn zero_width_slot_is_immediate() {
        let tl = Timeline::with_procs(1);
        assert_eq!(
            tl.earliest_slot(t(7), d(100), 0),
            Some((t(7), ProcSet::new()))
        );
    }

    #[test]
    fn truncate_kills_tail() {
        let mut tl = Timeline::with_procs(1);
        let id = tl.book(t(0), t(100), ProcSet::full(1), BookingKind::BestEffort);
        let b = tl.truncate(id, t(40)).unwrap();
        assert_eq!(b.end, t(40));
        assert_eq!(tl.free_at(t(50)), ProcSet::full(1));
        // Truncating before start removes.
        let id2 = tl.book(t(50), t(60), ProcSet::full(1), BookingKind::BestEffort);
        tl.truncate(id2, t(50));
        assert!(tl.booking(id2).is_none());
        assert_eq!(tl.n_bookings(), 1);
        // Truncating past the end is a no-op.
        let b = tl.truncate(id, t(1000)).unwrap();
        assert_eq!(b.end, t(40));
    }

    #[test]
    fn free_profile_enumerates_holes() {
        let mut tl = Timeline::with_procs(2);
        tl.book(t(10), t(20), ProcSet::from_indices([0]), BookingKind::Job);
        let prof = tl.free_profile(t(0), t(30));
        assert_eq!(
            prof,
            vec![
                (t(0), t(10), ProcSet::full(2)),
                (t(10), t(20), ProcSet::from_indices([1])),
                (t(20), t(30), ProcSet::full(2)),
            ]
        );
    }

    #[test]
    fn free_profile_merges_equal_segments() {
        let mut tl = Timeline::with_procs(2);
        // Two back-to-back bookings on the same proc: free set identical
        // across the boundary.
        tl.book(t(0), t(10), ProcSet::from_indices([0]), BookingKind::Job);
        tl.book(t(10), t(20), ProcSet::from_indices([0]), BookingKind::Job);
        let prof = tl.free_profile(t(0), t(20));
        assert_eq!(prof, vec![(t(0), t(20), ProcSet::from_indices([1]))]);
    }

    #[test]
    fn utilization_accounting() {
        let mut tl = Timeline::with_procs(2);
        tl.book(t(0), t(10), ProcSet::from_indices([0]), BookingKind::Job);
        // 10 proc-ticks busy out of 2×20 = 40.
        assert!((tl.utilization(t(0), t(20)) - 0.25).abs() < 1e-12);
        // Clipped to the window.
        assert!((tl.utilization(t(5), t(10)) - 0.5).abs() < 1e-12);
        assert_eq!(tl.utilization(t(10), t(20)), 0.0);
    }

    #[test]
    fn gc_drops_past_bookings() {
        let mut tl = Timeline::with_procs(1);
        tl.book(t(0), t(10), ProcSet::full(1), BookingKind::Job);
        let keep = tl.book(t(5), t(30), ProcSet::new(), BookingKind::Job);
        tl.gc(t(10));
        assert_eq!(tl.n_bookings(), 1);
        assert!(tl.booking(keep).is_some());
    }

    #[test]
    fn horizon_is_latest_end() {
        let mut tl = Timeline::with_procs(1);
        assert_eq!(tl.horizon(t(5)), t(5));
        tl.book(t(0), t(42), ProcSet::full(1), BookingKind::Job);
        assert_eq!(tl.horizon(t(5)), t(42));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }

    proptest! {
        /// Whatever earliest_slot returns can actually be booked, and no
        /// earlier candidate with the same parameters is feasible at the
        /// booking-end granularity.
        #[test]
        fn slot_results_are_bookable(
            intervals in prop::collection::vec((0u64..200, 1u64..60, 0usize..6, 1usize..4), 0..12),
            earliest in 0u64..100,
            dur in 1u64..50,
            width in 1usize..6,
        ) {
            let m = 6;
            let mut tl = Timeline::with_procs(m);
            for (s, len, p0, w) in intervals {
                let hi = (p0 + w).min(m);
                if p0 >= hi { continue; }
                let procs = ProcSet::range(p0, hi);
                // Only keep bookings that do not conflict (building a valid
                // schedule incrementally).
                let _ = tl.try_book(t(s), t(s + len), procs, BookingKind::Job);
            }
            if let Some((start, procs)) = tl.earliest_slot(t(earliest), Dur::from_ticks(dur), width) {
                prop_assert!(start >= t(earliest));
                prop_assert_eq!(procs.len(), width);
                // Booking the returned slot must succeed.
                let mut tl2 = tl.clone();
                prop_assert!(tl2.try_book(start, start + Dur::from_ticks(dur), procs, BookingKind::Job).is_ok());
                // Starting at `earliest` itself must fail unless that is the answer.
                if start > t(earliest) {
                    let free = tl.free_during(t(earliest), t(earliest) + Dur::from_ticks(dur));
                    prop_assert!(free.len() < width);
                }
            } else {
                prop_assert!(width > m);
            }
        }

        /// free_profile segments tile the window and agree with free_at.
        #[test]
        fn profile_tiles_window(
            intervals in prop::collection::vec((0u64..100, 1u64..40, 0usize..4, 1usize..3), 0..8),
        ) {
            let m = 4;
            let mut tl = Timeline::with_procs(m);
            for (s, len, p0, w) in intervals {
                let hi = (p0 + w).min(m);
                if p0 >= hi { continue; }
                let _ = tl.try_book(t(s), t(s + len), ProcSet::range(p0, hi), BookingKind::Job);
            }
            let prof = tl.free_profile(t(0), t(150));
            // Tiling.
            prop_assert_eq!(prof.first().map(|s| s.0), Some(t(0)));
            prop_assert_eq!(prof.last().map(|s| s.1), Some(t(150)));
            for w in prof.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0, "segments contiguous");
            }
            // Agreement with free_at at segment starts and midpoints.
            for (s, e, free) in &prof {
                prop_assert_eq!(&tl.free_at(*s), free);
                let mid = Time::from_ticks((s.ticks() + e.ticks()) / 2);
                prop_assert_eq!(&tl.free_at(mid), free);
            }
        }
    }
}
