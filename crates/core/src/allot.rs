//! Allotment selection for moldable tasks.
//!
//! "It is natural to decompose the problem in two successive phases:
//! determining first the number of processors for executing the jobs, then
//! solve the corresponding scheduling problem with rigid jobs." (§4)
//!
//! This module provides the first phase as standalone strategies (the second
//! phase is [`crate::list`] / [`crate::shelf`]); the MRT algorithm
//! ([`crate::mrt`]) couples the two phases through its knapsack instead.

use lsps_des::Dur;
use lsps_workload::Job;

use crate::list::{list_schedule_allotted, JobOrder};
use crate::schedule::Schedule;

/// Allotment-selection strategies for the two-phase approach.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllotRule {
    /// Everything sequential (`k = 1`): minimal work, maximal length.
    Sequential,
    /// Shortest execution time (`k = argmin p(k)`): minimal length,
    /// maximal work — floods the machine.
    MinTime,
    /// The classical compromise (Ludwig–Tiwari style): the smallest `k`
    /// whose *efficiency loss* stays bounded, chosen as the `k` minimising
    /// `max(p(k), W_total-aware budget)` — concretely, the `k` that
    /// minimises `max(p(k), w(k)·n/m)` where `n` is the job count, a proxy
    /// for balancing height against average machine load.
    Balanced,
}

/// Choose an allotment for `job` on an `m`-processor machine.
/// `n_jobs` informs the [`AllotRule::Balanced`] trade-off.
pub fn choose_allotment(job: &Job, m: usize, n_jobs: usize, rule: AllotRule) -> usize {
    let kmax = job.max_procs().min(m);
    let kmin = job.min_procs().min(kmax);
    match rule {
        AllotRule::Sequential => kmin,
        AllotRule::MinTime => {
            // Smallest k achieving the minimal time (profiles are monotone,
            // but flat tails are common — do not waste processors).
            let profile = match job.profile() {
                Some(p) => p,
                None => return kmin,
            };
            let best = profile.truncated(kmax).min_time();
            (kmin..=kmax)
                .find(|&k| profile.time(k) == best)
                .unwrap_or(kmax)
        }
        AllotRule::Balanced => {
            let profile = match job.profile() {
                Some(p) => p,
                None => return kmin,
            };
            let mut best_k = kmin;
            let mut best_val = u128::MAX;
            for k in kmin..=kmax {
                let p = profile.time(k).ticks() as u128;
                let w = profile.work(k).ticks() as u128;
                // Height vs. average-load proxy: w·n/m is the time the
                // machine needs if every job carried this work.
                let load = w * n_jobs as u128 / m as u128;
                let val = p.max(load);
                if val < best_val {
                    best_val = val;
                    best_k = k;
                }
            }
            best_k
        }
    }
}

/// Two-phase moldable scheduling: pick allotments with `rule`, then
/// list-schedule the resulting rigid jobs in `order`.
pub fn two_phase_moldable(jobs: &[Job], m: usize, rule: AllotRule, order: JobOrder) -> Schedule {
    let items: Vec<(&Job, usize)> = jobs
        .iter()
        .map(|j| (j, choose_allotment(j, m, jobs.len(), rule)))
        .collect();
    list_schedule_allotted(&items, m, order)
}

/// Total work (CPU-time) of the chosen allotments — the efficiency price of
/// a rule, used by the ablation benches.
pub fn total_work(jobs: &[Job], m: usize, rule: AllotRule) -> Dur {
    jobs.iter()
        .map(|j| {
            let k = choose_allotment(j, m, jobs.len(), rule);
            match j.profile() {
                Some(p) => p.work(k),
                None => j.min_work(),
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_workload::{MoldableProfile, SpeedupModel};

    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    fn amdahl_job(id: u64, seq: u64, kmax: usize) -> Job {
        Job::moldable(
            id,
            MoldableProfile::from_model(d(seq), &SpeedupModel::Amdahl { seq_fraction: 0.1 }, kmax),
        )
    }

    #[test]
    fn sequential_rule_picks_one() {
        let j = amdahl_job(1, 1000, 16);
        assert_eq!(choose_allotment(&j, 32, 10, AllotRule::Sequential), 1);
    }

    #[test]
    fn min_time_picks_smallest_fastest() {
        // CommPenalty saturates: the flat tail must not waste processors.
        let j = Job::moldable(
            1,
            MoldableProfile::from_model(d(1000), &SpeedupModel::CommPenalty { overhead: 0.1 }, 32),
        );
        let k = choose_allotment(&j, 32, 10, AllotRule::MinTime);
        let prof = j.profile().unwrap();
        assert_eq!(prof.time(k), prof.min_time());
        if k > 1 {
            assert!(prof.time(k - 1) > prof.min_time(), "k is minimal");
        }
        assert!(
            k < 32,
            "saturated profile should not take the whole machine"
        );
    }

    #[test]
    fn balanced_between_extremes() {
        let j = amdahl_job(1, 10_000, 64);
        let seq = choose_allotment(&j, 64, 20, AllotRule::Sequential);
        let fast = choose_allotment(&j, 64, 20, AllotRule::MinTime);
        let bal = choose_allotment(&j, 64, 20, AllotRule::Balanced);
        assert!(seq <= bal && bal <= fast, "{seq} <= {bal} <= {fast}");
    }

    #[test]
    fn balanced_shrinks_with_more_jobs() {
        let j = amdahl_job(1, 10_000, 64);
        let few = choose_allotment(&j, 64, 2, AllotRule::Balanced);
        let many = choose_allotment(&j, 64, 200, AllotRule::Balanced);
        assert!(many <= few, "more competing jobs ⇒ narrower allotments");
        assert_eq!(many, 1);
    }

    #[test]
    fn rigid_jobs_keep_their_count() {
        let j = Job::rigid(1, 4, d(10));
        for rule in [
            AllotRule::Sequential,
            AllotRule::MinTime,
            AllotRule::Balanced,
        ] {
            assert_eq!(choose_allotment(&j, 8, 5, rule), 4);
        }
    }

    #[test]
    fn two_phase_schedules_validate() {
        let jobs: Vec<Job> = (0..12).map(|i| amdahl_job(i, 500 + 100 * i, 16)).collect();
        for rule in [
            AllotRule::Sequential,
            AllotRule::MinTime,
            AllotRule::Balanced,
        ] {
            let s = two_phase_moldable(&jobs, 16, rule, JobOrder::Lpt);
            assert!(s.validate(&jobs).is_ok(), "{rule:?}");
        }
    }

    #[test]
    fn work_ordering_of_rules() {
        let jobs: Vec<Job> = (0..8).map(|i| amdahl_job(i, 2000, 16)).collect();
        let w_seq = total_work(&jobs, 16, AllotRule::Sequential);
        let w_bal = total_work(&jobs, 16, AllotRule::Balanced);
        let w_fast = total_work(&jobs, 16, AllotRule::MinTime);
        assert!(w_seq <= w_bal && w_bal <= w_fast);
    }
}
