//! Backfilling with advance reservations (§5.1 of the paper).
//!
//! The production policy family of cluster batch systems, and the one the
//! CiGri layer fills holes around:
//!
//! * **Conservative backfilling** — every queued job is booked at the
//!   earliest slot that does not disturb any earlier booking; later
//!   submissions may only slide into genuine holes. Start guarantees are
//!   absolute.
//! * **EASY (aggressive) backfilling** — only the queue head holds a
//!   reservation (its *shadow*); any other queued job may start immediately
//!   if it either finishes before the shadow time or avoids the shadow
//!   processors.
//!
//! **Advance reservations** ("a given number of processors in a given time
//! window", §5.1) are pre-booked intervals both policies must respect —
//! the paper notes batch algorithms handle these awkwardly; the timeline
//! representation handles them exactly.
//!
//! Jobs must be rigid (choose moldable allotments first, see
//! [`crate::allot`]). The builder replays the on-line process from release
//! dates, so the result is exactly what the on-line policy would have done
//! with clairvoyant (exact) runtimes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lsps_des::Time;
use lsps_platform::{BookingKind, ProcSet, Timeline};
use lsps_workload::{Job, JobKind};

use crate::schedule::Schedule;

/// An advance reservation: `procs` processors blocked during
/// `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// Window start.
    pub start: Time,
    /// Window end (exclusive).
    pub end: Time,
    /// Number of processors reserved.
    pub procs: usize,
}

/// Backfilling flavours.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackfillPolicy {
    /// Book every queued job (absolute start guarantees).
    Conservative,
    /// Book only the queue head; others may jump in if harmless.
    Easy,
}

/// Schedule rigid `jobs` on `m` processors around `reservations` with the
/// chosen backfilling policy. Queue order is FCFS by `(release, id)`.
///
/// # Panics
/// If a job is not rigid, needs more than `m` processors, or a reservation
/// cannot be placed.
pub fn backfill_schedule(
    jobs: &[Job],
    m: usize,
    reservations: &[Reservation],
    policy: BackfillPolicy,
) -> Schedule {
    backfill_schedule_estimated(jobs, m, reservations, policy, 1.0)
}

/// [`backfill_schedule`] with *inexact* runtime estimates — the §4.2
/// clairvoyance knob. Placement decisions use `estimate = ⌈true ×
/// estimate_factor⌉` (users systematically over-request wall time); jobs
/// still *complete* at their true length, and the freed tail becomes
/// visible to later decisions at the completion instant.
///
/// `estimate_factor >= 1` is required: under-estimates would let a running
/// job outlive its booking, which real systems handle by killing — that
/// path is modelled by `lsps_core::nonclairvoyant` instead.
pub fn backfill_schedule_estimated(
    jobs: &[Job],
    m: usize,
    reservations: &[Reservation],
    policy: BackfillPolicy,
    estimate_factor: f64,
) -> Schedule {
    let mut tl = Timeline::with_procs(m);
    book_reservations(&mut tl, reservations);
    backfill_on_timeline(jobs, m, tl, policy, estimate_factor)
}

/// Place count-based reservations on a timeline, deterministic first-fit —
/// shared by [`backfill_schedule_estimated`] and the [`crate::policy`]
/// layer so the placement rule cannot diverge.
///
/// # Panics
/// On a degenerate reservation or one that does not fit the free
/// processors of its window.
pub fn book_reservations(tl: &mut Timeline, reservations: &[Reservation]) {
    for (i, r) in reservations.iter().enumerate() {
        assert!(
            r.end > r.start && r.procs >= 1,
            "degenerate reservation {i}"
        );
        let free = tl.free_during(r.start, r.end);
        assert!(
            free.len() >= r.procs,
            "reservation {i} does not fit ({} free, {} wanted)",
            free.len(),
            r.procs
        );
        tl.book(
            r.start,
            r.end,
            free.take_first(r.procs),
            BookingKind::Reservation,
        );
    }
}

/// [`backfill_schedule_estimated`] over a pre-populated [`Timeline`]: every
/// existing booking (whatever its kind) is treated as inviolable. This is
/// the entry point the [`crate::policy`] layer and the grid's cluster-level
/// scheduling use to pin *exact* processor sets (a count-based
/// [`Reservation`] re-fits first-fit, which an incremental caller cannot
/// rely on).
pub fn backfill_on_timeline(
    jobs: &[Job],
    m: usize,
    tl: Timeline,
    policy: BackfillPolicy,
    estimate_factor: f64,
) -> Schedule {
    assert!(
        estimate_factor >= 1.0 && estimate_factor.is_finite(),
        "estimates must not undershoot (got factor {estimate_factor})"
    );
    assert_eq!(tl.capacity().len(), m, "timeline capacity must match m");
    for j in jobs {
        assert!(
            matches!(j.kind, JobKind::Rigid { .. }),
            "backfill_schedule expects rigid jobs; job {} is not",
            j.id
        );
        assert!(j.min_procs() <= m, "job {} wider than machine", j.id);
    }
    match policy {
        BackfillPolicy::Conservative => conservative(jobs, m, tl, estimate_factor),
        BackfillPolicy::Easy => easy(jobs, m, tl, estimate_factor),
    }
}

pub(crate) fn estimate(len: lsps_des::Dur, factor: f64) -> lsps_des::Dur {
    len.scale_ceil(factor).max(len)
}

pub(crate) fn fcfs_order(jobs: &[Job]) -> Vec<&Job> {
    let mut order: Vec<&Job> = jobs.iter().collect();
    order.sort_by_key(|j| (j.release, j.id));
    order
}

/// A proven-infeasible scan range: while packing, a job of width `w` and
/// duration `d` that placed at `hi` after scanning from `lo` certifies
/// that **no** start in `[lo, hi)` admits a window of `d` ticks with `w`
/// processors free. The conservative loop only ever *adds* bookings, so
/// the certificate never expires, and it transfers to any wider/longer
/// request (its window covers the failed one, its free set is a subset).
#[derive(Clone, Copy)]
struct InfeasibleRange {
    w: usize,
    d: lsps_des::Dur,
    lo: Time,
    hi: Time,
}

/// Monotone infeasibility frontier: the certificates accumulated so far.
/// `advance` chains every applicable range to push a query's scan start
/// forward — the saturated prefix of a backlogged schedule is skipped in
/// O(frontier) instead of walked boundary-by-boundary per job. Purely an
/// accelerator: it never changes which slot `earliest_slot` returns.
struct Frontier {
    ranges: Vec<InfeasibleRange>,
}

impl Frontier {
    const CAP: usize = 48;

    fn new() -> Self {
        Frontier { ranges: Vec::new() }
    }

    /// Furthest scan start reachable from `from` for a `(w, d)` request.
    fn advance(&self, mut from: Time, w: usize, d: lsps_des::Dur) -> Time {
        loop {
            let mut moved = false;
            for r in &self.ranges {
                if r.w <= w && r.d <= d && r.lo <= from && from < r.hi {
                    from = r.hi;
                    moved = true;
                }
            }
            if !moved {
                return from;
            }
        }
    }

    fn record(&mut self, r: InfeasibleRange) {
        if r.hi <= r.lo {
            return;
        }
        // Keep the set small: drop certificates the new one subsumes, and
        // under pressure evict the one ending earliest (only performance
        // is at stake, never correctness).
        self.ranges
            .retain(|e| !(r.w <= e.w && r.d <= e.d && r.lo <= e.lo && r.hi >= e.hi));
        if self.ranges.len() == Self::CAP {
            if let Some((i, _)) = self.ranges.iter().enumerate().min_by_key(|(_, e)| e.hi) {
                self.ranges.swap_remove(i);
            }
        }
        self.ranges.push(r);
    }
}

/// One conservative packing pass over `order` (already FCFS-sorted) on an
/// existing timeline. Every booking made is appended to `created` together
/// with the job's *true* completion — the incremental planner uses that to
/// pin batches at their real lengths afterwards; the batch entry point
/// discards it.
pub(crate) fn conservative_pass(
    order: &[&Job],
    tl: &mut Timeline,
    factor: f64,
    sched: &mut Schedule,
    created: &mut Vec<(lsps_platform::BookingId, Time)>,
) {
    // Conservative semantics with estimates: every queued job is booked at
    // its *estimated* length (no compression on early completion — later
    // bookings keep their guaranteed starts); the actual execution is the
    // true length inside that booking.
    let mut frontier = Frontier::new();
    for &job in order {
        let q = job.min_procs();
        let dur = job.time_on(q);
        let est = estimate(dur, factor);
        let from = frontier.advance(job.release, q, est);
        let (start, procs) = tl
            .earliest_slot(from, est, q)
            .expect("q <= m, so a slot always exists");
        frontier.record(InfeasibleRange {
            w: q,
            d: est,
            lo: from,
            hi: start,
        });
        let bk = tl.book(start, start + est, procs.clone(), BookingKind::Job);
        created.push((bk, start + dur));
        sched.place(job, start, procs);
    }
}

fn conservative(jobs: &[Job], m: usize, mut tl: Timeline, factor: f64) -> Schedule {
    let mut sched = Schedule::new(m);
    conservative_pass(
        &fcfs_order(jobs),
        &mut tl,
        factor,
        &mut sched,
        &mut Vec::new(),
    );
    sched
}

fn easy(jobs: &[Job], m: usize, mut tl: Timeline, factor: f64) -> Schedule {
    let mut sched = Schedule::new(m);
    easy_pass(
        &fcfs_order(jobs),
        &mut tl,
        factor,
        &mut sched,
        &mut Vec::new(),
    );
    sched
}

/// One EASY replay pass over `order` (already FCFS-sorted) on an existing
/// timeline — the event-driven engine behind [`easy`], factored out so the
/// incremental planner can run the identical machinery batch-by-batch on a
/// persistent timeline. Bookings created (with true completions) land in
/// `created`, like [`conservative_pass`].
pub(crate) fn easy_pass(
    order: &[&Job],
    tl: &mut Timeline,
    factor: f64,
    sched: &mut Schedule,
    created: &mut Vec<(lsps_platform::BookingId, Time)>,
) {
    // Event-driven replay: next_release pointer + completion/shadow events.
    let mut events: BinaryHeap<Reverse<Time>> = BinaryHeap::new();
    let mut next = 0usize; // first not-yet-released job in `order`
    let mut queue: Vec<usize> = Vec::new(); // indices into `order`, FCFS
                                            // Running bookings with their TRUE completion; the estimate tail is
                                            // released when the job actually finishes.
    let mut running: Vec<(lsps_platform::BookingId, Time)> = Vec::new();
    if let Some(j) = order.first() {
        events.push(Reverse(j.release));
    }

    while next < order.len() || !queue.is_empty() {
        let now = match events.pop() {
            Some(Reverse(t)) => t,
            None => unreachable!("queue non-empty implies a pending event"),
        };
        // Coalesce same-instant events.
        while matches!(events.peek(), Some(Reverse(t)) if *t == now) {
            events.pop();
        }
        // Early completions: truncate the over-estimated bookings so the
        // freed tail becomes visible to this decision round.
        running.retain(|&(bk, true_end)| {
            if true_end <= now {
                tl.truncate(bk, true_end);
                false
            } else {
                true
            }
        });
        while next < order.len() && order[next].release <= now {
            queue.push(next);
            next += 1;
        }
        if next < order.len() {
            events.push(Reverse(order[next].release));
        }

        // Start the head while it fits (per its estimate).
        while let Some(&h) = queue.first() {
            let job = order[h];
            let q = job.min_procs();
            let dur = job.time_on(q);
            let est = estimate(dur, factor);
            if tl.free_during_upper_bound(now, now + est) < q {
                break;
            }
            let free = tl.free_during(now, now + est);
            if free.len() >= q {
                let procs = free.take_first(q);
                let bk = tl.book(now, now + est, procs.clone(), BookingKind::Job);
                running.push((bk, now + dur));
                created.push((bk, now + dur));
                sched.place(job, now, procs);
                events.push(Reverse(now + dur));
                queue.remove(0);
            } else {
                break;
            }
        }
        if queue.is_empty() {
            continue;
        }

        // Head blocked: compute its shadow reservation (estimate-sized).
        let head = order[queue[0]];
        let hq = head.min_procs();
        let hest = estimate(head.time_on(hq), factor);
        let (shadow_t, shadow_procs) = tl
            .earliest_slot(now, hest, hq)
            .expect("hq <= m, so a slot always exists");
        events.push(Reverse(shadow_t));

        // Backfill the rest of the queue without delaying the shadow.
        let mut i = 1;
        while i < queue.len() {
            let job = order[queue[i]];
            let q = job.min_procs();
            let dur = job.time_on(q);
            let est = estimate(dur, factor);
            // Count-only reject: the union free set can never exceed the
            // per-segment count bound, so a failing bound is a guaranteed
            // miss — skip the set materialization entirely.
            if tl.free_during_upper_bound(now, now + est) < q {
                i += 1;
                continue;
            }
            let free = tl.free_during(now, now + est);
            let candidate = if now + est <= shadow_t {
                // Its estimate ends before the head starts: any free procs.
                free
            } else {
                // Crosses the shadow: must leave the shadow processors.
                free.difference(&shadow_procs)
            };
            if candidate.len() >= q {
                let procs = candidate.take_first(q);
                let bk = tl.book(now, now + est, procs.clone(), BookingKind::Job);
                running.push((bk, now + dur));
                created.push((bk, now + dur));
                sched.place(job, now, procs);
                events.push(Reverse(now + dur));
                queue.remove(i);
            } else {
                i += 1;
            }
        }
    }
}

/// Convenience: does `sched` keep every reservation interval untouched?
/// (Schedule validation cannot know about reservations, so tests use this.)
pub fn respects_reservations(sched: &Schedule, m: usize, reservations: &[Reservation]) -> bool {
    // Rebuild reservation procsets exactly as `backfill_schedule` placed
    // them (deterministic first-fit from an empty timeline).
    let mut tl = Timeline::with_procs(m);
    let mut resv_books: Vec<(Time, Time, ProcSet)> = Vec::new();
    for r in reservations {
        let free = tl.free_during(r.start, r.end);
        let procs = free.take_first(r.procs);
        tl.book(r.start, r.end, procs.clone(), BookingKind::Reservation);
        resv_books.push((r.start, r.end, procs));
    }
    sched.assignments().iter().all(|a| {
        resv_books.iter().all(|(s, e, procs)| {
            let time_overlap = a.start < *e && *s < a.end;
            !time_overlap || a.procs.is_disjoint(procs)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsps_des::Dur;
    use lsps_workload::JobId;

    fn t(x: u64) -> Time {
        Time::from_ticks(x)
    }
    fn d(x: u64) -> Dur {
        Dur::from_ticks(x)
    }

    fn start_of(s: &Schedule, id: u64) -> Time {
        s.assignments()
            .iter()
            .find(|a| a.job == JobId(id))
            .expect("job scheduled")
            .start
    }

    #[test]
    fn both_policies_fill_holes_behind_a_wide_head() {
        // m=2: A(q1,10) runs on p0; B(q2,5) must wait; C(q1,10) fits on p1
        // alongside A and ends exactly when B can start — both policies
        // backfill it.
        let jobs = vec![
            Job::rigid(1, 1, d(10)),
            Job::rigid(2, 2, d(5)),
            Job::rigid(3, 1, d(10)),
        ];
        for policy in [BackfillPolicy::Conservative, BackfillPolicy::Easy] {
            let s = backfill_schedule(&jobs, 2, &[], policy);
            assert!(s.validate(&jobs).is_ok(), "{policy:?}");
            assert_eq!(start_of(&s, 3), t(0), "{policy:?} backfills C");
            assert_eq!(start_of(&s, 2), t(10), "{policy:?} head at 10");
            assert_eq!(s.makespan(), t(15), "{policy:?}");
        }
    }

    #[test]
    fn easy_blocks_backfill_that_would_delay_head() {
        // m=2: A(q1,10) on p0. Head B(q2,5) shadow at t=10 on {0,1}.
        // C(q1,20) would cross the shadow and needs a shadow proc → must
        // wait; it may start only once B is running.
        let jobs = vec![
            Job::rigid(1, 1, d(10)),
            Job::rigid(2, 2, d(5)),
            Job::rigid(3, 1, d(20)),
        ];
        let s = backfill_schedule(&jobs, 2, &[], BackfillPolicy::Easy);
        assert!(s.validate(&jobs).is_ok());
        assert_eq!(start_of(&s, 2), t(10), "head not delayed");
        assert!(start_of(&s, 3) >= t(10), "C not allowed to push B");
    }

    #[test]
    fn conservative_respects_booked_order() {
        let jobs = vec![
            Job::rigid(1, 2, d(10)),                  // [0,10) both procs
            Job::rigid(2, 2, d(10)),                  // booked [10,20)
            Job::rigid(3, 1, d(5)).released_at(t(1)), // must go after, at 20
        ];
        let s = backfill_schedule(&jobs, 2, &[], BackfillPolicy::Conservative);
        assert!(s.validate(&jobs).is_ok());
        assert_eq!(start_of(&s, 2), t(10));
        assert_eq!(start_of(&s, 3), t(20));
    }

    #[test]
    fn conservative_slides_into_real_holes() {
        // m=2: A(q2,10) at 0; B(q1,30) at 10 on p0; C(q1,10) released 5
        // fits the hole on p1 at t=10.
        let jobs = vec![
            Job::rigid(1, 2, d(10)),
            Job::rigid(2, 1, d(30)),
            Job::rigid(3, 1, d(10)).released_at(t(5)),
        ];
        let s = backfill_schedule(&jobs, 2, &[], BackfillPolicy::Conservative);
        assert!(s.validate(&jobs).is_ok());
        assert_eq!(start_of(&s, 3), t(10));
        assert_eq!(s.makespan(), t(40));
    }

    #[test]
    fn reservations_are_inviolable() {
        let resv = [Reservation {
            start: t(5),
            end: t(15),
            procs: 2,
        }];
        let jobs = vec![
            Job::rigid(1, 2, d(10)), // cannot fit before the reservation
            Job::rigid(2, 1, d(4)),  // fits before it
        ];
        for policy in [BackfillPolicy::Conservative, BackfillPolicy::Easy] {
            let s = backfill_schedule(&jobs, 2, &resv, policy);
            assert!(s.validate(&jobs).is_ok(), "{policy:?}");
            assert!(respects_reservations(&s, 2, &resv), "{policy:?}");
            assert_eq!(start_of(&s, 1), t(15), "{policy:?} wide job after window");
            assert_eq!(start_of(&s, 2), t(0), "{policy:?} small job before window");
        }
    }

    #[test]
    fn release_dates_honoured() {
        let jobs = vec![Job::rigid(1, 1, d(5)).released_at(t(42))];
        for policy in [BackfillPolicy::Conservative, BackfillPolicy::Easy] {
            let s = backfill_schedule(&jobs, 4, &[], policy);
            assert_eq!(start_of(&s, 1), t(42), "{policy:?}");
        }
    }

    #[test]
    fn estimates_factor_one_matches_exact() {
        let jobs = vec![
            Job::rigid(1, 1, d(10)),
            Job::rigid(2, 2, d(5)),
            Job::rigid(3, 1, d(20)).released_at(t(3)),
        ];
        for policy in [BackfillPolicy::Conservative, BackfillPolicy::Easy] {
            let exact = backfill_schedule(&jobs, 2, &[], policy);
            let est = backfill_schedule_estimated(&jobs, 2, &[], policy, 1.0);
            assert_eq!(exact, est, "{policy:?}");
        }
    }

    #[test]
    fn overestimates_still_yield_valid_schedules() {
        let jobs = vec![
            Job::rigid(1, 1, d(10)),
            Job::rigid(2, 2, d(8)),
            Job::rigid(3, 1, d(6)).released_at(t(2)),
            Job::rigid(4, 1, d(4)).released_at(t(5)),
        ];
        for factor in [1.5, 3.0, 10.0] {
            for policy in [BackfillPolicy::Conservative, BackfillPolicy::Easy] {
                let s = backfill_schedule_estimated(&jobs, 2, &[], policy, factor);
                assert_eq!(s.validate(&jobs), Ok(()), "{policy:?} @ {factor}");
                assert_eq!(s.len(), jobs.len());
            }
        }
    }

    #[test]
    fn easy_recovers_overestimated_tails_conservative_does_not() {
        // m=1. A's true length 10 but estimated 30; B arrives at 12.
        // Conservative booked B after the estimate (t=30); EASY sees the
        // early completion at t=10 and starts B at its release.
        let jobs = vec![
            Job::rigid(1, 1, d(10)),
            Job::rigid(2, 1, d(5)).released_at(t(12)),
        ];
        let cons = backfill_schedule_estimated(&jobs, 1, &[], BackfillPolicy::Conservative, 3.0);
        let easy = backfill_schedule_estimated(&jobs, 1, &[], BackfillPolicy::Easy, 3.0);
        assert!(cons.validate(&jobs).is_ok() && easy.validate(&jobs).is_ok());
        let start_of = |s: &Schedule, id: u64| {
            s.assignments()
                .iter()
                .find(|a| a.job == JobId(id))
                .unwrap()
                .start
        };
        assert_eq!(
            start_of(&cons, 2),
            t(30),
            "conservative trusts the estimate"
        );
        assert_eq!(start_of(&easy, 2), t(12), "EASY reuses the freed tail");
        assert!(easy.makespan() < cons.makespan());
    }

    #[test]
    #[should_panic]
    fn underestimates_rejected() {
        backfill_schedule_estimated(
            &[Job::rigid(1, 1, d(10))],
            1,
            &[],
            BackfillPolicy::Easy,
            0.5,
        );
    }

    #[test]
    fn empty_workload_is_fine() {
        for policy in [BackfillPolicy::Conservative, BackfillPolicy::Easy] {
            let s = backfill_schedule(&[], 4, &[], policy);
            assert!(s.is_empty(), "{policy:?}");
        }
    }

    #[test]
    #[should_panic]
    fn moldable_jobs_rejected() {
        use lsps_workload::{MoldableProfile, SpeedupModel};
        let j = Job::moldable(
            1,
            MoldableProfile::from_model(d(10), &SpeedupModel::Linear, 2),
        );
        backfill_schedule(&[j], 4, &[], BackfillPolicy::Easy);
    }

    #[test]
    #[should_panic]
    fn oversize_reservation_rejected() {
        backfill_schedule(
            &[],
            2,
            &[Reservation {
                start: t(0),
                end: t(10),
                procs: 3,
            }],
            BackfillPolicy::Easy,
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use lsps_des::Dur;
    use proptest::prelude::*;

    proptest! {
        /// Both policies always produce valid schedules that respect
        /// reservations, and neither beats the area lower bound.
        #[test]
        fn backfill_always_valid(
            specs in prop::collection::vec((1usize..4, 1u64..30, 0u64..60), 1..25),
            resv_start in 0u64..40,
            resv_len in 1u64..20,
            resv_procs in 1usize..3,
            easy in any::<bool>(),
        ) {
            let m = 4;
            let jobs: Vec<Job> = specs.iter().enumerate()
                .map(|(i, &(q, len, rel))| {
                    Job::rigid(i as u64, q, Dur::from_ticks(len))
                        .released_at(Time::from_ticks(rel))
                })
                .collect();
            let resv = [Reservation {
                start: Time::from_ticks(resv_start),
                end: Time::from_ticks(resv_start + resv_len),
                procs: resv_procs,
            }];
            let policy = if easy { BackfillPolicy::Easy } else { BackfillPolicy::Conservative };
            let s = backfill_schedule(&jobs, m, &resv, policy);
            prop_assert_eq!(s.validate(&jobs), Ok(()));
            prop_assert!(respects_reservations(&s, m, &resv));
            let lb = lsps_metrics::cmax_lower_bound(&jobs, m);
            prop_assert!(s.makespan().since_epoch() >= lb.min(s.makespan().since_epoch()));
        }
    }
}
