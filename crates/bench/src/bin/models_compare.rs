//! TAB-P — "which policy for which application?", quantified.
//!
//! The paper's thesis is that the right policy depends on the application
//! class and the criterion. This binary is a thin wrapper over the
//! built-in [`lsps_scenario::campaign::builtin::models_compare_spec`]
//! campaigns: the advisor's policy choices (by registry name) cross three
//! workload classes on the Fig. 2 machine (m = 100) and every executor,
//! one campaign per release mode, through one code path. The measured
//! winners are then compared against the advisor's recommendations.

use lsps_bench::runner::{self, Cell};
use lsps_bench::{write_csv, Table};
use lsps_core::advisor::{advise, Application, Objective};
use lsps_core::allot::{two_phase_moldable, AllotRule};
use lsps_core::list::JobOrder;
use lsps_core::mrt::{mrt_schedule, MrtParams};
use lsps_core::policy::ReleaseMode;
use lsps_des::{Dur, SimRng, Time};
use lsps_metrics::cmax_lower_bound;
use lsps_scenario::campaign::builtin::models_compare_spec;
use lsps_scenario::{run_campaign, CampaignOptions};
use lsps_workload::{Job, MoldableProfile, SpeedupModel, WorkloadSpec};

const M: usize = 100;
const N: usize = 400;

fn main() {
    println!("TAB-P — policy × workload matrix on m = {M} (ratios vs lower bounds)\n");

    // Every (mode × executor) through one campaign per mode: the executor
    // column quantifies what moving from a batch rectangle evaluation
    // (direct / des-replay, which must agree) to honest event-driven online
    // execution (des-online) costs each policy.
    let mut all_cells: Vec<(String, Cell)> = Vec::new();
    for mode in [ReleaseMode::Offline, ReleaseMode::Online] {
        let mode_name = match mode {
            ReleaseMode::Offline => "off-line",
            ReleaseMode::Online => "on-line",
        };
        let report = run_campaign(&models_compare_spec(mode), &CampaignOptions::default())
            .expect("built-in campaign spec runs");
        for cell in report.cells {
            all_cells.push((mode_name.to_string(), cell));
        }
    }

    let mut table = Table::new(&[
        "mode",
        "executor",
        "workload",
        "policy",
        "Cmax ratio",
        "sWC ratio",
        "mean flow (s)",
        "max flow (s)",
        "util %",
    ]);
    let mut csv = String::from("mode,");
    csv.push_str(runner::CSV_HEADER);
    csv.push('\n');
    for (mode, c) in &all_cells {
        table.row(vec![
            mode.clone(),
            c.executor.clone(),
            c.workload.clone(),
            c.policy.clone(),
            format!("{:.3}", c.cmax_ratio),
            format!("{:.3}", c.wsum_ratio),
            format!("{:.1}", c.criteria.mean_flow),
            format!("{:.1}", c.criteria.max_flow),
            format!("{:.1}", c.utilization * 100.0),
        ]);
        csv.push_str(&format!("{mode},{}\n", c.csv_row()));
    }
    table.print();
    write_csv("models_compare.csv", &csv);

    println!("\nmeasured winners vs advisor recommendations:");
    println!("(the advisor optimizes worst-case guarantees; on random instances the");
    println!(" greedy policies are competitive — the paper's own pragmatic point)");
    let mut t2 = Table::new(&[
        "mode",
        "workload",
        "criterion",
        "measured best",
        "advisor says",
        "guarantee",
    ]);
    for mode in ["off-line", "on-line"] {
        for wl in ["SequentialBag", "Rigid", "Moldable"] {
            // Winners are judged on the batch evaluation (direct); the
            // des-online rows quantify the online-execution cost separately.
            let group: Vec<&Cell> = all_cells
                .iter()
                .filter(|(m, c)| m == mode && c.workload == wl && c.executor == "direct")
                .map(|(_, c)| c)
                .collect();
            let best = |metric: &dyn Fn(&Cell) -> f64| -> String {
                group
                    .iter()
                    .min_by(|a, b| metric(a).total_cmp(&metric(b)))
                    .expect("non-empty group")
                    .policy
                    .clone()
            };
            let app = match wl {
                "SequentialBag" => Application::SequentialBag,
                "Rigid" => Application::RigidParallel,
                _ => Application::Moldable,
            };
            let on_line = mode == "on-line";
            for (criterion, metric, objective) in [
                (
                    "Cmax",
                    (&|c: &Cell| c.cmax_ratio) as &dyn Fn(&Cell) -> f64,
                    Objective::Makespan,
                ),
                (
                    "sum wC",
                    &|c: &Cell| c.wsum_ratio,
                    Objective::WeightedCompletion,
                ),
            ] {
                let rec = advise(app, objective, on_line);
                let advised = rec
                    .policy
                    .instantiate()
                    .map(|p| p.name().to_string())
                    .unwrap_or_else(|| format!("{:?}", rec.policy));
                t2.row(vec![
                    mode.into(),
                    wl.into(),
                    criterion.into(),
                    best(metric),
                    advised,
                    rec.guarantee
                        .map(|g| format!("{g:.2}"))
                        .unwrap_or_else(|| "-".into()),
                ]);
            }
        }
    }
    t2.print();

    // Campaign class: DLT policies (the PT policies would schedule 10^5
    // unit jobs; DLT treats them as one divisible load — the paper's §5.2
    // point).
    println!("\ncampaign class (divisible): see dlt_policies; steady-state is the advisor pick:");
    let rec = advise(Application::DivisibleLoad, Objective::Throughput, true);
    println!("  advisor: {:?} — {}", rec.policy, rec.rationale);

    // Quantified §5.1 remark: mixed strategies.
    println!("\nmixed rigid+moldable strategies (§5.1), Cmax ratio:");
    let mut rng = SimRng::seed_from(11);
    let mixed: Vec<Job> = (0..N)
        .map(|i| {
            let seq = Dur::from_ticks(rng.int_range(1_000, 300_000));
            if rng.chance(0.4) {
                Job::rigid(i as u64, rng.int_range(1, 40) as usize, seq)
            } else {
                Job::moldable(
                    i as u64,
                    MoldableProfile::from_model(
                        seq,
                        &SpeedupModel::Amdahl {
                            seq_fraction: rng.range(0.0, 0.2),
                        },
                        rng.int_range(1, M as u64) as usize,
                    ),
                )
            }
        })
        .collect();
    let lb = cmax_lower_bound(&mixed, M).as_secs_f64();
    let mut t3 = Table::new(&["strategy", "Cmax ratio"]);
    for strategy in [
        lsps_core::mixed::MixedStrategy::SeparatePhases,
        lsps_core::mixed::MixedStrategy::PreallocateThenRigid,
        lsps_core::mixed::MixedStrategy::RigidIntoBatches,
    ] {
        let s = lsps_core::mixed::mixed_schedule(&mixed, M, strategy);
        s.validate(&mixed).expect("valid");
        t3.row(vec![
            format!("{strategy:?}"),
            format!("{:.3}", s.makespan().as_secs_f64() / lb),
        ]);
    }
    t3.print();

    // Two-phase allotment ablation (DESIGN.md §5).
    println!("\nmoldable allotment-rule ablation (two-phase, Cmax ratio):");
    let moldable = {
        let mut rng = SimRng::seed_from(13);
        WorkloadSpec::fig2_parallel(N).generate(M, &mut rng)
    };
    let zero: Vec<Job> = moldable
        .iter()
        .map(|j| {
            let mut c = j.clone();
            c.release = Time::ZERO;
            c
        })
        .collect();
    let lb = cmax_lower_bound(&zero, M).as_secs_f64();
    let mut t4 = Table::new(&["allot rule", "Cmax ratio"]);
    for rule in [
        AllotRule::Sequential,
        AllotRule::MinTime,
        AllotRule::Balanced,
    ] {
        let s = two_phase_moldable(&zero, M, rule, JobOrder::Lpt);
        s.validate(&zero).expect("valid");
        t4.row(vec![
            format!("{rule:?}"),
            format!("{:.3}", s.makespan().as_secs_f64() / lb),
        ]);
    }
    let s = mrt_schedule(&zero, M, MrtParams::default());
    s.validate(&zero).expect("valid");
    t4.row(vec![
        "MRT knapsack".into(),
        format!("{:.3}", s.makespan().as_secs_f64() / lb),
    ]);
    t4.print();
}
