//! Offline shim for `serde`: a small value-model serialization framework.
//!
//! Types implement [`Serialize`]/[`Deserialize`] by converting to and from
//! a JSON-shaped [`Value`] tree; `#[derive(Serialize, Deserialize)]` (from
//! the sibling `serde_derive` shim) generates those impls with the same
//! data layout conventions as real serde (maps for named structs,
//! transparent newtypes, externally tagged enums), so the JSON produced by
//! the `serde_json` shim is interchangeable with upstream output for the
//! types in this workspace.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the serialization data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field of a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for Error {}

/// Convert `self` into the serialization data model.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from the serialization data model.
pub trait Deserialize: Sized {
    /// Parse from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

/// Fetch a required struct field (derive-internal helper).
pub fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, Error> {
    v.get(name)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected unsigned integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Int(n) => *n,
                    _ => return Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys by their serialized form for a deterministic encoding.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = match k.to_value() {
                    Value::Str(s) => s,
                    Value::UInt(n) => n.to_string(),
                    Value::Int(n) => n.to_string(),
                    other => panic!("unsupported map key {other:?}"),
                };
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| {
                // Keys arrive as strings; retry as integers for numeric
                // keys (unsigned first, then signed for negative keys).
                let key = K::from_value(&Value::Str(k.clone()))
                    .or_else(|_| {
                        k.parse::<u64>()
                            .map_err(|_| Error::custom("bad map key"))
                            .and_then(|n| K::from_value(&Value::UInt(n)))
                    })
                    .or_else(|_| {
                        k.parse::<i64>()
                            .map_err(|_| Error::custom("bad map key"))
                            .and_then(|n| K::from_value(&Value::Int(n)))
                    })?;
                Ok((key, V::from_value(val)?))
            })
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($($t::from_value(
                    s.get($n).ok_or_else(|| Error::custom("tuple too short"))?
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2].to_value()),
            Ok(vec![1, 2])
        );
    }

    #[test]
    fn missing_field_reported() {
        let v = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert!(field(&v, "a").is_ok());
        assert!(field(&v, "b").is_err());
    }
}
