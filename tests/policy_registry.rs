//! Property-style coverage of the policy registry: **every** registered
//! policy, over seeded random rigid/moldable workloads, must produce a
//! schedule that validates and whose makespan respects the certified
//! area/critical-path lower bound. Plus the advisor round-trip:
//! `PolicyChoice::instantiate()` yields runnable `Box<dyn Policy>` values.

use lsps::core::advisor::{advise, Application, Objective, PolicyChoice};
use lsps::core::policy::{by_name, registry, PolicyCtx, ReleaseMode};
use lsps::prelude::*;

/// A random mixed workload: rigid and moldable jobs, scattered releases,
/// varied weights — the shape every policy must cope with.
fn random_workload(seed: u64, n: usize, m: usize) -> Vec<Job> {
    let mut rng = SimRng::seed_from(seed);
    let mut clock = 0u64;
    (0..n)
        .map(|i| {
            clock += rng.int_range(0, 150);
            let seq = Dur::from_ticks(rng.int_range(20, 3_000));
            let job = if rng.chance(0.5) {
                Job::moldable(
                    i as u64,
                    MoldableProfile::from_model(
                        seq,
                        &SpeedupModel::Amdahl {
                            seq_fraction: rng.range(0.0, 0.3),
                        },
                        rng.int_range(1, m as u64) as usize,
                    ),
                )
            } else {
                Job::rigid(i as u64, rng.int_range(1, m as u64 / 2) as usize, seq)
            };
            job.released_at(Time::from_ticks(clock))
                .with_weight(rng.range(0.5, 5.0))
        })
        .collect()
}

/// Narrow wide rigid jobs to the sequential domain of uniform-machine
/// policies (a multi-processor rectangle has no span across processors of
/// different speeds); every other policy takes the workload as-is.
fn domain_workload(policy: &dyn lsps::core::policy::Policy, jobs: &[Job]) -> Vec<Job> {
    match policy.outcome_kind() {
        OutcomeKind::Uniform => jobs
            .iter()
            .map(|j| match j.kind {
                JobKind::Rigid { len, .. } => Job {
                    kind: JobKind::Rigid { procs: 1, len },
                    ..j.clone()
                },
                _ => j.clone(),
            })
            .collect(),
        _ => jobs.to_vec(),
    }
}

#[test]
fn every_registered_policy_validates_and_respects_the_lower_bound() {
    for seed in 0..6u64 {
        let m = [8usize, 24, 50][seed as usize % 3];
        let n = 10 + (seed as usize * 13) % 50;
        let all_jobs = random_workload(seed, n, m);
        for policy in registry() {
            let jobs = domain_workload(policy.as_ref(), &all_jobs);
            for mode in [ReleaseMode::Online, ReleaseMode::Offline] {
                let ctx = PolicyCtx {
                    release_mode: mode,
                    ..PolicyCtx::default()
                };
                let run = policy.run(&jobs, m, &ctx);
                assert_eq!(
                    run.validate(),
                    Ok(()),
                    "{} seed {seed} ({mode:?})",
                    policy.name()
                );
                assert_eq!(run.schedule.len(), jobs.len(), "{}", policy.name());
                // No schedule may beat the certified lower bound — computed
                // on the as-scheduled jobs (rigidified/stripped views have
                // their own, different bound).
                let lb = cmax_lower_bound(&run.jobs, m);
                assert!(
                    run.schedule.makespan().since_epoch() >= lb,
                    "{} seed {seed} ({mode:?}): makespan {:?} beats the bound {lb:?}",
                    policy.name(),
                    run.schedule.makespan()
                );
            }
        }
    }
}

#[test]
fn registry_has_at_least_nine_distinct_policies() {
    let mut names: Vec<String> = registry().iter().map(|p| p.name().to_string()).collect();
    let before = names.len();
    names.sort();
    names.dedup();
    assert_eq!(before, names.len(), "duplicate names in the registry");
    assert!(before >= 9, "only {before} policies registered");
}

#[test]
fn advisor_choices_instantiate_into_runnable_policies() {
    let m = 16;
    let jobs = random_workload(42, 20, m);
    let every_choice = [
        PolicyChoice::MrtBatch,
        PolicyChoice::SmartShelves,
        PolicyChoice::BiCriteriaBatches,
        PolicyChoice::Backfilling,
        PolicyChoice::WsptList,
        PolicyChoice::DynamicEquipartition,
        PolicyChoice::DivisibleSteadyState,
        PolicyChoice::BestEffortGrid,
    ];
    for choice in every_choice {
        match choice.instantiate() {
            Some(policy) => {
                // The instance is registered under the same name…
                let registered = by_name(policy.name());
                assert!(registered.is_some(), "{} not in registry", policy.name());
                // …and actually runs.
                let run = policy.run(&jobs, m, &PolicyCtx::default());
                assert_eq!(run.validate(), Ok(()), "{}", policy.name());
            }
            None => assert!(
                matches!(
                    choice,
                    PolicyChoice::DivisibleSteadyState | PolicyChoice::BestEffortGrid
                ),
                "{choice:?} should instantiate"
            ),
        }
    }
}

#[test]
fn advisor_recommendations_round_trip_through_the_registry() {
    // Every PT recommendation the advisor makes must be runnable as-is.
    for app in [
        Application::SequentialBag,
        Application::RigidParallel,
        Application::Moldable,
        Application::MalleableCapable,
    ] {
        for obj in [
            Objective::Makespan,
            Objective::WeightedCompletion,
            Objective::BiCriteria,
        ] {
            for on_line in [false, true] {
                let rec = advise(app, obj, on_line);
                let Some(policy) = rec.policy.instantiate() else {
                    continue; // grid/DLT recommendations live in other crates
                };
                let jobs = random_workload(7, 12, 8);
                let run = policy.run(&jobs, 8, &PolicyCtx::default());
                assert_eq!(
                    run.validate(),
                    Ok(()),
                    "{app:?}/{obj:?} -> {}",
                    policy.name()
                );
            }
        }
    }
}
