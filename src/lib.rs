//! # lsps — scheduling models and policies for large scale platforms
//!
//! Umbrella crate for the LSPS workspace, a reproduction of
//! *"Models for scheduling on large scale platforms: which policy for which
//! application?"* (Dutot, Eyraud, Mounié, Trystram — IPDPS 2004).
//!
//! The workspace implements both computational models the paper advocates —
//! **Parallel Tasks** (rigid / moldable / malleable) and **Divisible Load** —
//! together with the approximation algorithms it surveys (MRT two-shelf
//! moldable scheduling, on-line batch transformation, SMART shelves for
//! weighted completion time, the bi-criteria doubling-batch algorithm), the
//! divisible-load distribution policies (one-round bus/star, multi-round,
//! steady state), and the CiGri-style light-grid management layer
//! (centralized best-effort filling, decentralized load exchange).
//!
//! Each sub-crate is usable on its own; this crate re-exports them under
//! stable names and offers a [`prelude`].
//!
//! ```
//! use lsps::prelude::*;
//!
//! // 100 identical machines, like the paper's Fig. 2 simulation.
//! let platform = Platform::uniform("cluster", 100);
//! assert_eq!(platform.total_procs(), 100);
//! ```

pub use lsps_core as core;
pub use lsps_des as des;
pub use lsps_dlt as dlt;
pub use lsps_grid as grid;
pub use lsps_metrics as metrics;
pub use lsps_platform as platform;
pub use lsps_scenario as scenario;
pub use lsps_service as service;
pub use lsps_workload as workload;

/// The most commonly used items from every sub-crate.
pub mod prelude {
    pub use lsps_core::prelude::*;
    pub use lsps_des::prelude::*;
    pub use lsps_dlt::prelude::*;
    pub use lsps_grid::prelude::*;
    pub use lsps_metrics::prelude::*;
    pub use lsps_platform::prelude::*;
    pub use lsps_workload::prelude::*;
}
