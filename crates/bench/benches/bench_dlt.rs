//! Divisible-load solver cost: closed forms scale with worker count, the
//! self-scheduling simulator with chunk count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lsps_dlt::multiround::multi_round;
use lsps_dlt::{
    self_schedule, star_single_round, star_steady_state, MultiRoundParams, Worker, WorkerOrder,
};

fn workers(n: usize) -> Vec<Worker> {
    (0..n)
        .map(|i| Worker::new(1.0 + (i % 4) as f64 * 0.25, 5.0 + (i % 3) as f64, 1e-4))
        .collect()
}

fn dlt(c: &mut Criterion) {
    let mut group = c.benchmark_group("dlt");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[16usize, 128, 1024] {
        let ws = workers(n);
        group.bench_with_input(BenchmarkId::new("star_closed_form", n), &n, |b, _| {
            b.iter(|| star_single_round(1e5, &ws, WorkerOrder::ByBandwidth));
        });
        group.bench_with_input(BenchmarkId::new("steady_state", n), &n, |b, _| {
            b.iter(|| star_steady_state(&ws));
        });
        group.bench_with_input(BenchmarkId::new("multi_round_8", n), &n, |b, _| {
            b.iter(|| {
                multi_round(
                    1e5,
                    &ws,
                    MultiRoundParams {
                        rounds: 8,
                        growth: 1.5,
                    },
                )
            });
        });
    }
    group.bench_function("self_sched_10k_chunks", |b| {
        let ws = workers(64);
        b.iter(|| self_schedule(1e4, &ws, 1.0));
    });
    group.finish();
}

criterion_group!(benches, dlt);
criterion_main!(benches);
