//! # lsps-dlt — Divisible Load Theory (§2.1 and §5.2 of the paper)
//!
//! "A Divisible Load Task can be seen as a (usually large) set of
//! computations that can be partitioned in every possible way" — introduced
//! by Cheng & Robertazzi (ref \[4\]) for big data files, and in the paper the
//! natural model for the CIMENT *multi-parametric* campaigns.
//!
//! The crate implements the distribution policies the paper discusses:
//!
//! * [`bus`] — one-round distribution over a shared bus (the "simple
//!   polynomial problem" of §2.1): closed-form chunk sizes such that all
//!   workers finish simultaneously, with optional result gathering as the
//!   "mirror image of the data distribution";
//! * [`star`] — one-round heterogeneous star with per-worker links and the
//!   classical ordering question (serve fastest links first);
//! * [`multiround`] — multi-installment distribution: pipeline
//!   communication and computation at the price of extra latencies;
//! * [`steady`] — bandwidth-centric steady state: the asymptotically
//!   optimal throughput for arbitrarily long campaigns, "computed in
//!   polynomial time" (§5.2), on stars and on trees (ref \[4\]'s topology);
//! * [`selfsched`] — dynamic chunk self-scheduling (work-stealing flavour,
//!   §2.1 ref \[3\]) as the practical baseline the closed forms are measured
//!   against.
//!
//! Units: *load* is measured in abstract units (1 unit = 1 second of work
//! for a speed-1.0 reference CPU); worker speeds are units/second; links
//! carry `bytes_per_unit · units` bytes at their bandwidth. All math is
//! `f64` (rounded to ticks only at the simulation boundary, per DESIGN.md).

pub mod bus;
pub mod model;
pub mod multiround;
pub mod selfsched;
pub mod star;
pub mod steady;
pub mod tree;

pub use bus::bus_single_round;
pub use model::{DltPlan, Worker};
pub use multiround::{multi_round, MultiRoundParams};
pub use selfsched::self_schedule;
pub use star::{star_single_round, WorkerOrder};
pub use steady::{star_steady_state, tree_steady_state, TreeNode};
pub use tree::{equivalent_speed, tree_single_round, TreeAlphas};

/// Commonly used items.
pub mod prelude {
    pub use crate::bus::bus_single_round;
    pub use crate::model::{DltPlan, Worker};
    pub use crate::multiround::{multi_round, MultiRoundParams};
    pub use crate::selfsched::self_schedule;
    pub use crate::star::{star_single_round, WorkerOrder};
    pub use crate::steady::{star_steady_state, tree_steady_state, TreeNode};
    pub use crate::tree::{equivalent_speed, tree_single_round, TreeAlphas};
}
