//! Deterministic randomness for simulations.
//!
//! [`SimRng`] wraps a ChaCha8 stream cipher RNG: fast, high quality, and —
//! the property we actually need — *stable across platforms and versions*,
//! so every experiment in EXPERIMENTS.md reproduces exactly from its seed.
//!
//! Besides the raw `rand` API it provides the samplers the workload
//! generators need (exponential inter-arrivals, log-uniform work sizes,
//! bounded-Pareto/Weibull/lognormal heavy tails) implemented by inverse-CDF /
//! Box–Muller directly, so we do not need the `rand_distr` crate.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic simulation RNG. Cloning forks the exact stream state.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Create from a seed. Equal seeds ⇒ identical streams, forever.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream. Children with distinct `stream`
    /// ids are statistically independent of each other and of the parent;
    /// used to give each generator/component its own stream so adding a
    /// component does not perturb the draws of the others.
    pub fn child(&self, stream: u64) -> SimRng {
        let mut c = self.clone();
        // Mix the stream id through SplitMix64 so nearby ids diverge fully.
        let mut z = stream.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let seed = c.inner.next_u64() ^ z;
        SimRng::seed_from(seed)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform u64.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "int_range: lo {lo} > hi {hi}");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[lo, hi)`. Panics unless `lo < hi` and both finite.
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite());
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Exponential with the given mean (inter-arrival times of a Poisson
    /// process of rate `1/mean`).
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exp: non-positive mean {mean}");
        // Inverse CDF; 1-u avoids ln(0).
        -mean * (1.0 - self.f64()).ln()
    }

    /// Log-uniform in `[lo, hi]`: `exp(U(ln lo, ln hi))`. The classic
    /// "sizes spread over orders of magnitude" distribution used by the
    /// Fig. 2 workloads. Requires `0 < lo <= hi`.
    pub fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo > 0.0 && lo <= hi, "log_uniform: bad bounds [{lo}, {hi}]");
        if lo == hi {
            return lo;
        }
        (self.range(lo.ln(), hi.ln())).exp()
    }

    /// Bounded Pareto on `[lo, hi]` with shape `alpha > 0` — heavy-tailed
    /// job sizes (many small, few huge), truncated for finite moments.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(alpha > 0.0 && lo > 0.0 && lo < hi);
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the truncated Pareto.
        let x = (u * ha - u * la - ha) / (ha * la);
        (-x).powf(-1.0 / alpha)
    }

    /// Weibull with given shape and scale (shape < 1 models the heavy-tailed
    /// runtimes seen in production traces).
    pub fn weibull(&mut self, shape: f64, scale: f64) -> f64 {
        assert!(shape > 0.0 && scale > 0.0);
        scale * (-(1.0 - self.f64()).ln()).powf(1.0 / shape)
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0);
        let u1 = 1.0 - self.f64(); // (0, 1]
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Lognormal: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choice on empty slice");
        &items[self.int_range(0, items.len() as u64 - 1) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.int_range(0, i as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Sample an index according to non-negative weights (at least one
    /// strictly positive).
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted_index: weights sum to {total}");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0);
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1 // numeric edge: fall to the last positive bucket
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn child_streams_are_independent_and_stable() {
        let root = SimRng::seed_from(7);
        let mut c1 = root.child(0);
        let mut c1b = root.child(0);
        let mut c2 = root.child(1);
        assert_eq!(c1.u64(), c1b.u64(), "same stream id ⇒ same draws");
        assert_ne!(c1.u64(), c2.u64());
    }

    #[test]
    fn ranges_respected() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = r.range(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
            let n = r.int_range(10, 20);
            assert!((10..=20).contains(&n));
            let lu = r.log_uniform(1.0, 1000.0);
            assert!((1.0..=1000.0).contains(&lu));
            let bp = r.bounded_pareto(1.5, 1.0, 100.0);
            assert!((1.0..=100.0).contains(&bp));
            let w = r.weibull(0.7, 10.0);
            assert!(w >= 0.0 && w.is_finite());
        }
    }

    #[test]
    fn exp_mean_roughly_correct() {
        let mut r = SimRng::seed_from(11);
        let n = 20_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < 0.15,
            "exp mean off: {observed} vs {mean}"
        );
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut r = SimRng::seed_from(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn log_uniform_median_is_geometric_mean() {
        let mut r = SimRng::seed_from(17);
        let n = 20_001;
        let mut xs: Vec<f64> = (0..n).map(|_| r.log_uniform(1.0, 10_000.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        // Geometric mean of bounds = 100.
        assert!((50.0..200.0).contains(&median), "median {median}");
    }

    #[test]
    fn weighted_index_hits_proportions() {
        let mut r = SimRng::seed_from(19);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..8000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.4..3.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(29);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
