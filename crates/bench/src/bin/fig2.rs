//! FIG2 — regenerates Figure 2 of the paper.
//!
//! "A simulated implementation of a variation of the bi-criteria algorithm
//! has been realized […] the simulation assumed a cluster of 100 machines,
//! parallel and non-parallel jobs, and two criteria Cmax and Σ ωiCi."
//!
//! A declarative config over [`lsps_bench::runner::ExperimentRunner`]: one
//! policy (`bicriteria` from the registry), workloads = the two Fig. 2 job
//! populations × n = 50..1000 × 10 seeds, one platform (m = 100). The
//! table reports the two ratios the figure plots, aggregated over seeds;
//! the CSV carries every raw cell in the standard runner schema.
//!
//! Expected shape (paper): ratios between 1 and ~2.8, decreasing with the
//! number of tasks, the non-parallel series above the parallel one for
//! Σ ωiCi.

use lsps_bench::runner::{self, summarize_by, ExperimentRunner, PlatformCase, WorkloadCase};
use lsps_bench::{write_csv, Table};
use lsps_core::policy::by_name;
use lsps_workload::WorkloadSpec;

const M: usize = 100;
const SEEDS: u64 = 10;
const NS: [usize; 11] = [50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000];

fn main() {
    println!("FIG2 — bi-criteria simulation on {M} machines ({SEEDS} seeds/point)\n");

    let mut r = ExperimentRunner::new(vec![by_name("bicriteria").expect("registered")]);
    r.platforms = vec![PlatformCase::new("fig2", M)];
    r.workloads = NS
        .iter()
        .flat_map(|&n| {
            (0..SEEDS).flat_map(move |seed| {
                [
                    WorkloadCase::new(format!("Non Parallel/{n}"), 1000 + seed, move |m, rng| {
                        let mut rng = rng.child(n as u64);
                        WorkloadSpec::fig2_sequential(n).generate(m, &mut rng)
                    }),
                    WorkloadCase::new(format!("Parallel/{n}"), 1000 + seed, move |m, rng| {
                        let mut rng = rng.child(n as u64);
                        WorkloadSpec::fig2_parallel(n).generate(m, &mut rng)
                    }),
                ]
            })
        })
        .collect();
    let cells = r.run();

    let wici = summarize_by(&cells, |c| c.workload.clone(), |c| c.wsum_ratio);
    let cmax = summarize_by(&cells, |c| c.workload.clone(), |c| c.cmax_ratio);
    let cmax_of = |key: &String| {
        cmax.iter()
            .find(|(k, _)| k == key)
            .map(|(_, s)| s)
            .expect("same grouping")
    };

    let mut table = Table::new(&["n", "series", "WiCi ratio", "±", "Cmax ratio", "±"]);
    for (key, w) in &wici {
        let (series, n) = key.split_once('/').expect("series/n key");
        let c = cmax_of(key);
        table.row(vec![
            n.to_string(),
            series.to_string(),
            format!("{:.3}", w.mean()),
            format!("{:.3}", w.std_dev()),
            format!("{:.3}", c.mean()),
            format!("{:.3}", c.std_dev()),
        ]);
    }
    table.print();
    write_csv("fig2.csv", &runner::to_csv(&cells));
    println!(
        "\npaper shape check: ratios should start high at small n and decrease \
         toward 1 as n grows (both plots of Fig. 2)."
    );
}
