//! `lsps-campaign` — run a declarative campaign spec.
//!
//! ```text
//! lsps-campaign <spec.json> [--dry-run] [--no-cache] [--resume] [--threads N] [--cache-dir DIR]
//! ```
//!
//! Reads a JSON [`CampaignSpec`], expands the grid, serves every cell it
//! can from the content-addressed cache (default `results/cache/`), runs
//! the rest through the worker pool, and writes two CSVs under `results/`:
//! `<name>.csv` (raw per-cell rows, standard runner schema) and
//! `<name>_agg.csv` (replications aggregated with mean/std/ci95/min/
//! median/max per metric). Output is byte-identical whether cells came
//! from the cache or fresh execution, so re-running after an interruption
//! *is* resume; `--resume` spells that out and overrides `--no-cache`.
//!
//! `--dry-run` stops after expansion: it prints the cell count, how many
//! cells the cache would serve, and a per-group breakdown (the same
//! [`CampaignPlan`] surface the `lsps-campaignd` daemon shards on) without
//! executing anything or writing any file.

use std::path::PathBuf;
use std::process::ExitCode;

use lsps_scenario::campaign::aggregate_header;
use lsps_scenario::{
    results_dir, run_campaign, write_file_atomic, CampaignOptions, CampaignPlan, CampaignSpec,
    Table,
};

struct Args {
    spec_path: PathBuf,
    dry_run: bool,
    no_cache: bool,
    resume: bool,
    threads: usize,
    cache_dir: Option<PathBuf>,
}

const USAGE: &str = "usage: lsps-campaign <spec.json> [--dry-run] [--no-cache] [--resume] \
                     [--threads N] [--cache-dir DIR]";

/// `Ok(None)` means help was requested: print usage to stdout, exit 0.
fn parse_args() -> Result<Option<Args>, String> {
    let mut spec_path = None;
    let mut dry_run = false;
    let mut no_cache = false;
    let mut resume = false;
    let mut threads = 0usize;
    let mut cache_dir = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--dry-run" => dry_run = true,
            "--no-cache" => no_cache = true,
            "--resume" => resume = true,
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                threads = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(
                    argv.next().ok_or("--cache-dir needs a value")?,
                ));
            }
            "--help" | "-h" => return Ok(None),
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => {
                if spec_path.replace(PathBuf::from(other)).is_some() {
                    return Err("exactly one spec path expected".into());
                }
            }
        }
    }
    Ok(Some(Args {
        spec_path: spec_path.ok_or(USAGE)?,
        dry_run,
        no_cache,
        resume,
        threads,
        cache_dir,
    }))
}

fn run() -> Result<(), String> {
    let Some(args) = parse_args()? else {
        println!("{USAGE}");
        return Ok(());
    };
    let text = std::fs::read_to_string(&args.spec_path)
        .map_err(|e| format!("{}: {e}", args.spec_path.display()))?;
    let spec: CampaignSpec =
        serde_json::from_str(&text).map_err(|e| format!("{}: {e}", args.spec_path.display()))?;
    let results = results_dir();
    // --resume is the explicit spelling of the default: caching on.
    let caching = args.resume || !args.no_cache;
    let opts = CampaignOptions {
        cache_dir: caching.then(|| {
            args.cache_dir
                .clone()
                .unwrap_or_else(|| results.join("cache"))
        }),
        threads: args.threads,
        base_dir: args.spec_path.parent().map(PathBuf::from),
    };
    // Survey the cache up front with the stray-file-tolerant listing: a
    // long-lived cache dir full of editor droppings must not kill the run.
    if let Some(dir) = &opts.cache_dir {
        match lsps_scenario::cache::CellCache::new(dir) {
            Ok(cache) => println!(
                "cache: {} shards under {}",
                cache.shard_names().len(),
                dir.display()
            ),
            Err(e) => eprintln!("[warn] cache dir {}: {e}", dir.display()),
        }
    }
    println!(
        "campaign `{}`: {} cells ({} policies x {} executors x {} platforms x {} workload reps)",
        spec.name,
        spec.cell_count(),
        spec.policies.len(),
        spec.executors.len(),
        spec.platforms.len(),
        spec.workloads
            .iter()
            .map(|w| spec.replication.seeds_for(w).len())
            .sum::<usize>(),
    );
    if args.dry_run {
        return dry_run(&spec, &opts);
    }
    let report = run_campaign(&spec, &opts).map_err(|e| e.to_string())?;

    // Aggregate table on stdout: the campaign-level view.
    let mut table = Table::new(&[
        "policy",
        "executor",
        "workload",
        "platform",
        "reps",
        "Cmax ratio",
        "±ci95",
        "sWC ratio",
        "util %",
    ]);
    for line in report.aggregate_csv.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        let col = |name: &str| {
            let idx = aggregate_header()
                .split(',')
                .position(|h| h == name)
                .expect("known aggregate column");
            f[idx].to_string()
        };
        let pct = |s: &str| format!("{:.1}", s.parse::<f64>().unwrap_or(f64::NAN) * 100.0);
        table.row(vec![
            f[0].into(),
            f[1].into(),
            f[2].into(),
            f[3].into(),
            f[5].into(),
            col("cmax_ratio_mean"),
            col("cmax_ratio_ci95"),
            col("wsum_ratio_mean"),
            pct(&col("utilization_mean")),
        ]);
    }
    table.print();

    let raw = write_file_atomic(&results, &format!("{}.csv", spec.name), &report.raw_csv);
    let agg = write_file_atomic(
        &results,
        &format!("{}_agg.csv", spec.name),
        &report.aggregate_csv,
    );
    println!("\n[written] {}", raw.display());
    println!("[written] {}", agg.display());
    println!(
        "cache: {}/{} cells served from cache, {} executed; cache-hit-rate: {:.1}%",
        report.cache_hits,
        report.total,
        report.total - report.cache_hits,
        report.hit_rate(),
    );
    Ok(())
}

/// Expand the spec and report what a real run would do — cell count,
/// cache hits, per-group breakdown — without executing a single cell.
fn dry_run(spec: &CampaignSpec, opts: &CampaignOptions) -> Result<(), String> {
    let plan = CampaignPlan::expand(spec, opts).map_err(|e| e.to_string())?;
    let cache = match &opts.cache_dir {
        Some(dir) => Some(lsps_scenario::cache::CellCache::new(dir).map_err(|e| e.to_string())?),
        None => None,
    };
    // Group in canonical cell order by (executor, platform, workload): the
    // same axes the aggregate table groups on, minus the policy (each group
    // spans the whole policy set).
    let mut order: Vec<(String, String, String)> = Vec::new();
    let mut counts: std::collections::HashMap<(String, String, String), (usize, usize)> =
        std::collections::HashMap::new();
    let mut cached = 0usize;
    for cell in plan.cells() {
        let key = (
            cell.executor.name().to_string(),
            spec.platforms[cell.platform].name.clone(),
            spec.workloads[cell.entry].name.clone(),
        );
        let hit = cache.as_ref().is_some_and(|c| c.load(&cell.key).is_some());
        cached += hit as usize;
        let e = counts.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (0, 0)
        });
        e.0 += 1;
        e.1 += hit as usize;
    }
    let mut table = Table::new(&["executor", "platform", "workload", "cells", "cached"]);
    for key in order {
        let (total, hits) = counts[&key];
        table.row(vec![
            key.0,
            key.1,
            key.2,
            total.to_string(),
            hits.to_string(),
        ]);
    }
    table.print();
    println!(
        "\ndry-run: {} cells, {} cached ({:.1}%), {} to execute — nothing run, nothing written",
        plan.cells().len(),
        cached,
        if plan.cells().is_empty() {
            100.0
        } else {
            100.0 * cached as f64 / plan.cells().len() as f64
        },
        plan.cells().len() - cached,
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
