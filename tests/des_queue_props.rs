//! Property coverage of the DES substrate the online executor now leans
//! on: under *any* interleaving of `schedule`/`cancel`, the event queue
//! pops in nondecreasing time order with FIFO tie-breaking, cancellation
//! reports liveness exactly once, and the engine dispatches every live
//! event in that same order. The whole workspace's determinism rests on
//! these two invariants.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use lsps::des::{Ctx, EventQueue, Model, Simulation, Time};
use proptest::prelude::*;

/// The retired event-queue representation, kept as the differential
/// oracle: a lazy-cancellation binary heap ordered by `(Time, seq)` with
/// a by-key live table — semantically the queue the engine ran on before
/// the slab + 4-ary-heap rewrite. Any observable divergence between this
/// and [`EventQueue`] under a random op interleaving is a bug in the
/// rewrite, not a modelling choice.
struct OracleQueue<E> {
    heap: BinaryHeap<Reverse<(Time, u64)>>,
    live: HashMap<u64, E>,
    next_seq: u64,
}

impl<E> OracleQueue<E> {
    fn new() -> Self {
        OracleQueue {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
            next_seq: 0,
        }
    }

    fn schedule(&mut self, at: Time, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.live.insert(seq, event);
        seq
    }

    fn cancel(&mut self, seq: u64) -> bool {
        self.live.remove(&seq).is_some()
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if let Some(event) = self.live.remove(&seq) {
                return Some((at, event));
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.live.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random interleavings of `schedule` and `cancel`, then a full drain:
    /// pops are nondecreasing in time, FIFO within a tie, a cancelled entry
    /// never surfaces, and `cancel` of an already-popped key returns false.
    #[test]
    fn interleaved_schedule_cancel_drains_in_order(
        ops in prop::collection::vec((0u8..8, 0u64..48, 0usize..64), 1..80),
    ) {
        let mut q = EventQueue::new();
        // (key, cancelled-by-us); payload = (time, global insertion seq).
        let mut keys = Vec::new();
        let mut insertions = 0u64;
        for &(op, t, idx) in &ops {
            if op < 6 {
                let key = q.schedule(Time::from_ticks(t), (t, insertions));
                insertions += 1;
                keys.push((key, false));
            } else if !keys.is_empty() {
                let i = idx % keys.len();
                let was_live = !keys[i].1;
                prop_assert_eq!(
                    q.cancel(keys[i].0), was_live,
                    "cancel must report liveness exactly once"
                );
                keys[i].1 = true;
            }
        }
        let cancelled = keys.iter().filter(|(_, c)| *c).count();
        prop_assert_eq!(q.len(), keys.len() - cancelled);

        let mut popped = Vec::new();
        let mut last: Option<(Time, u64)> = None;
        while let Some((at, key, (t, seq))) = q.pop() {
            prop_assert_eq!(at.ticks(), t, "popped at a different time than scheduled");
            if let Some((prev_at, prev_seq)) = last {
                prop_assert!(at >= prev_at, "time order violated");
                if at == prev_at {
                    prop_assert!(seq > prev_seq, "FIFO tie-break violated");
                }
            }
            last = Some((at, seq));
            popped.push(key);
        }
        prop_assert_eq!(popped.len() + cancelled, keys.len());
        for key in popped {
            prop_assert!(!q.cancel(key), "cancel of a popped key must return false");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Differential test against the retired representation: drive
    /// [`EventQueue`] and [`OracleQueue`] through the same random
    /// interleaving of schedule / cancel / pop and require identical
    /// observable behavior at every step — same `(Time, event)` from every
    /// pop, same boolean from every cancel, same live count throughout,
    /// and identical drain tails. Keys differ by construction (the new
    /// queue packs slot/generation, the oracle uses raw sequence numbers),
    /// so correspondence is tracked positionally, never compared.
    #[test]
    fn queue_matches_binary_heap_oracle(
        ops in prop::collection::vec((0u8..10, 0u64..64, 0usize..96), 1..120),
    ) {
        let mut q = EventQueue::new();
        let mut oracle = OracleQueue::new();
        // Positional key correspondence: keys[i] = (new key, oracle key).
        // Entries are never removed — cancelling or popping a key must
        // keep behaving identically (return false) on both sides.
        let mut keys = Vec::new();
        let mut payload = 0u64;
        for &(op, t, idx) in &ops {
            if op < 6 {
                let at = Time::from_ticks(t);
                keys.push((q.schedule(at, payload), oracle.schedule(at, payload)));
                payload += 1;
            } else if op < 8 {
                if !keys.is_empty() {
                    let (new_key, oracle_key) = keys[idx % keys.len()];
                    prop_assert_eq!(
                        q.cancel(new_key),
                        oracle.cancel(oracle_key),
                        "cancel verdicts diverged"
                    );
                }
            } else {
                let got = q.pop().map(|(at, _, ev)| (at, ev));
                prop_assert_eq!(got, oracle.pop(), "pop results diverged");
            }
            prop_assert_eq!(q.len(), oracle.len(), "live counts diverged");
        }
        loop {
            let got = q.pop().map(|(at, _, ev)| (at, ev));
            let want = oracle.pop();
            prop_assert_eq!(got, want, "drain tails diverged");
            if want.is_none() {
                break;
            }
        }
    }
}

/// Records every dispatch instant.
struct Recorder {
    seen: Vec<Time>,
}

impl Model for Recorder {
    type Event = ();
    fn handle(&mut self, now: Time, _event: (), _ctx: &mut Ctx<'_, ()>) {
        self.seen.push(now);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine built on that queue dispatches every seeded event, in
    /// sorted time order, and its counters agree with the run stats.
    #[test]
    fn engine_dispatches_every_event_in_time_order(
        times in prop::collection::vec(0u64..500, 1..60),
    ) {
        let mut sim = Simulation::new(Recorder { seen: Vec::new() });
        for &t in &times {
            sim.schedule_at(Time::from_ticks(t), ());
        }
        let stats = sim.run_to_completion(times.len() as u64 + 1);
        prop_assert_eq!(stats.events_dispatched, times.len() as u64);
        prop_assert_eq!(sim.dispatched(), times.len() as u64);
        let seen: Vec<u64> = sim.model().seen.iter().map(|t| t.ticks()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(seen, sorted);
    }
}
