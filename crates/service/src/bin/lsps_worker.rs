//! `lsps-worker` — one campaign worker process.
//!
//! Speaks the newline-delimited JSON protocol of
//! [`lsps_service::protocol`] over stdin/stdout and exits when its stdin
//! closes. Spawned and supervised by `lsps-campaignd`; running it by hand
//! is only useful for poking at the protocol:
//!
//! ```text
//! $ echo '{"Run":{"id":"x","cell":0}}' | lsps-worker
//! {"Error":{"id":"x","cell":0,"error":"campaign not loaded"}}
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    match lsps_service::worker::worker_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("lsps-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
