//! Graceful shutdown and journal robustness: a draining daemon refuses
//! new campaigns with 503 while in-flight cells finish and persist, a
//! restart resumes the drained campaign from the journal + cache, and a
//! torn journal entry is skipped with a warning instead of wedging the
//! replay.

use std::fs;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lsps_scenario::{run_campaign, CampaignOptions, CampaignSpec};
use lsps_service::daemon::config_under;
use lsps_service::http::{get, post};
use lsps_service::Daemon;

fn examples_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples")
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lsps-shutdown-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp root");
    dir
}

fn example_text(file: &str) -> String {
    fs::read_to_string(examples_dir().join(file)).expect("example spec")
}

fn reference(spec_text: &str) -> lsps_scenario::CampaignReport {
    let spec: CampaignSpec = serde_json::from_str(spec_text).expect("spec parses");
    run_campaign(
        &spec,
        &CampaignOptions {
            cache_dir: None,
            threads: 0,
            base_dir: Some(examples_dir()),
        },
    )
    .expect("in-process run")
}

fn wait_complete(daemon: &Daemon, id: &str, deadline: Duration) -> String {
    let start = Instant::now();
    loop {
        let status = daemon.status_json(id).expect("submitted campaign");
        if status.contains("\"complete\":true") {
            return status;
        }
        assert!(
            start.elapsed() < deadline,
            "campaign {id} did not complete in {deadline:?}: {status}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn drain_refuses_new_campaigns_persists_progress_and_resumes() {
    let root = temp_root("drain");
    let spec_text = example_text("outcomes_campaign.json");
    let reference = reference(&spec_text);

    let mut cfg = config_under(&root, env!("CARGO_BIN_EXE_lsps-worker"));
    cfg.workers = 2;
    cfg.base_dir = Some(examples_dir());
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || daemon.serve(listener))
    };

    let (status, body) = post(&addr, "/campaigns", &spec_text).expect("submit");
    assert_eq!(status, 202, "{body}");
    let id = body
        .split("\"id\":\"")
        .nth(1)
        .and_then(|r| r.split('"').next())
        .expect("status body carries the id")
        .to_string();

    // Enter drain mode (the binary wires this to SIGTERM): submissions
    // bounce with 503 while reads keep serving, then the blocking drain
    // gives the in-flight cells a generous grace period to finish.
    daemon.begin_drain();
    assert!(daemon.is_draining());
    let (status, body) = post(&addr, "/campaigns", &spec_text).expect("post while draining");
    assert_eq!(status, 503, "draining daemon must refuse work: {body}");
    let (status, body) = get(&addr, &format!("/campaigns/{id}")).expect("status read");
    assert_eq!(status, 200);
    assert!(body.contains("\"draining\":true"), "{body}");
    assert!(
        daemon.drain(Duration::from_secs(120)),
        "fleet went idle inside the grace period"
    );
    server.join().expect("server thread").expect("serve exits");

    // Restart on the same directories: the journal replays the campaign
    // and everything the drain persisted comes straight from cache.
    let mut cfg = config_under(&root, env!("CARGO_BIN_EXE_lsps-worker"));
    cfg.workers = 2;
    cfg.base_dir = Some(examples_dir());
    let daemon = Daemon::start(cfg).expect("daemon restarts");
    wait_complete(&daemon, &id, Duration::from_secs(300));
    let (raw, agg) = daemon.csvs(&id).expect("complete campaign");
    assert_eq!(raw, reference.raw_csv, "raw CSV differs after drain+resume");
    assert_eq!(agg, reference.aggregate_csv, "aggregate differs");
    daemon.shutdown();
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn torn_journal_entry_is_skipped_and_the_rest_replays() {
    let root = temp_root("torn");
    let spec_text = example_text("outcomes_campaign.json");
    let reference = reference(&spec_text);

    // Journal a valid campaign the honest way, then plant a torn entry
    // next to it (a half-written JSON line, as a crashed write without
    // the atomic rename would leave behind).
    let mut cfg = config_under(&root, env!("CARGO_BIN_EXE_lsps-worker"));
    cfg.workers = 2;
    cfg.base_dir = Some(examples_dir());
    let daemon = Daemon::start(cfg).expect("daemon starts");
    let id = daemon.submit(&spec_text).expect("spec accepted");
    wait_complete(&daemon, &id, Duration::from_secs(300));
    daemon.shutdown();
    let torn = &spec_text[..spec_text.len() / 2];
    fs::write(root.join("journal").join("00torn.json"), torn).expect("plant torn entry");

    // Replay must skip the torn entry (sorted first, so it cannot shadow
    // the real one) and still resume the valid campaign from cache.
    let mut cfg = config_under(&root, env!("CARGO_BIN_EXE_lsps-worker"));
    cfg.workers = 2;
    cfg.base_dir = Some(examples_dir());
    let daemon = Daemon::start(cfg).expect("daemon restarts despite torn entry");
    let status = wait_complete(&daemon, &id, Duration::from_secs(60));
    assert!(
        status.contains(&format!("\"cached\":{}", reference.total)),
        "valid campaign resumes fully cached: {status}"
    );
    let (raw, _) = daemon.csvs(&id).expect("resumed campaign");
    assert_eq!(raw, reference.raw_csv);
    daemon.shutdown();
    let _ = fs::remove_dir_all(&root);
}
