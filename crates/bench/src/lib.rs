//! Shared plumbing for the experiment binaries.
//!
//! The scenario runner, the campaign subsystem, result-file helpers and
//! the table printer all live in `lsps_scenario`; this crate re-exports
//! them under their historical `lsps_bench` paths (every experiment
//! binary, test and example keeps compiling unchanged) and adds the
//! binary-facing convenience [`write_csv`].
//!
//! Every binary writes machine-readable CSV under `results/` (created at
//! the workspace root when run from inside it) and a human-readable table
//! on stdout. EXPERIMENTS.md references both.

pub use lsps_scenario::runner;
pub use lsps_scenario::{
    campaign, results_dir, run_campaign, write_file_atomic, CampaignOptions, CampaignPlan,
    CampaignReport, CampaignSpec, Table,
};
pub use lsps_service as service;
pub use runner::{Cell, Executor, ExperimentRunner, PlatformCase, WorkloadCase};

/// Write CSV content to `results/<name>` (atomically — see
/// [`write_file_atomic`]) and report the path on stdout.
pub fn write_csv(name: &str, content: &str) {
    let path = write_file_atomic(&results_dir(), name, content);
    println!("\n[written] {}", path.display());
}
