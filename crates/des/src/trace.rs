//! Bounded execution traces.
//!
//! A [`Trace`] is a ring buffer of timestamped strings recorded by model code
//! through [`Ctx::trace`](crate::engine::Ctx::trace). Tracing is off by
//! default and costs one branch per call site when disabled (the formatting
//! closure is never invoked), so models can trace generously.

use std::collections::VecDeque;

use crate::time::Time;

/// One recorded line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Simulated time at which the line was recorded.
    pub at: Time,
    /// The rendered message.
    pub text: String,
}

/// Ring buffer of trace lines; keeps the most recent `capacity` entries.
#[derive(Clone, Debug)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl Trace {
    /// A trace that records nothing.
    pub fn disabled() -> Self {
        Trace {
            entries: VecDeque::new(),
            capacity: 0,
            enabled: false,
            dropped: 0,
        }
    }

    /// A trace keeping the most recent `capacity` lines.
    pub fn enabled(capacity: usize) -> Self {
        Trace {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: capacity > 0,
            dropped: 0,
        }
    }

    /// Whether lines are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a line; `text` is only evaluated when enabled.
    pub fn record(&mut self, at: Time, text: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { at, text: text() });
    }

    /// Iterate over retained lines, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Number of retained lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many lines were evicted by the ring buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the retained lines, one per row, `time<TAB>text`.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "{}\t{}", e.at, e.text);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_skips_formatting() {
        let mut t = Trace::disabled();
        let mut called = false;
        t.record(Time::ZERO, || {
            called = true;
            "x".into()
        });
        assert!(!called, "formatting closure must not run when disabled");
        assert!(t.is_empty());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Trace::enabled(3);
        for i in 0..5u64 {
            t.record(Time::from_ticks(i), || format!("e{i}"));
        }
        let texts: Vec<_> = t.entries().map(|e| e.text.as_str()).collect();
        assert_eq!(texts, vec!["e2", "e3", "e4"]);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn render_format() {
        let mut t = Trace::enabled(8);
        t.record(Time::from_secs(1), || "hello".into());
        assert_eq!(t.render(), "1.000s\thello\n");
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let t = Trace::enabled(0);
        assert!(!t.is_enabled());
    }
}
