//! Communication model.
//!
//! The PT and DLT models both *hide* communications inside coarse
//! parameters — a penalty factor for parallel tasks, a distribution cost for
//! divisible loads (paper §2). What remains observable is an affine
//! latency + bandwidth cost per message, differing by hierarchy level:
//! inside an SMP node, inside a cluster (Myrinet vs GigE vs 100 Mb
//! Ethernet in Fig. 3), and between clusters.

use serde::{Deserialize, Serialize};

use lsps_des::Dur;

/// An affine link: transferring `b` bytes costs `latency + b / bandwidth`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkClass {
    /// One-way latency, in seconds.
    pub latency_s: f64,
    /// Bandwidth, in bytes per second.
    pub bandwidth_bps: f64,
}

impl LinkClass {
    /// A link with the given latency (seconds) and bandwidth (bytes/s).
    pub fn new(latency_s: f64, bandwidth_bps: f64) -> Self {
        assert!(latency_s >= 0.0 && bandwidth_bps > 0.0);
        LinkClass {
            latency_s,
            bandwidth_bps,
        }
    }

    /// Myrinet-class interconnect (Fig. 3 "Myrinet"): ~10 µs, ~250 MB/s.
    pub fn myrinet() -> Self {
        LinkClass::new(10e-6, 250e6)
    }

    /// Gigabit Ethernet (Fig. 3 "Giga Eth"): ~50 µs, ~125 MB/s.
    pub fn gige() -> Self {
        LinkClass::new(50e-6, 125e6)
    }

    /// 100 Mb/s Ethernet (Fig. 3 "Eth 100"): ~100 µs, ~12.5 MB/s.
    pub fn eth100() -> Self {
        LinkClass::new(100e-6, 12.5e6)
    }

    /// Campus/metropolitan WAN between the clusters of a light grid:
    /// ~1 ms, ~100 MB/s shared.
    pub fn campus_wan() -> Self {
        LinkClass::new(1e-3, 100e6)
    }

    /// Shared memory inside an SMP node: ~1 µs, ~2 GB/s.
    pub fn smp_bus() -> Self {
        LinkClass::new(1e-6, 2e9)
    }

    /// Time to move `bytes` across this link, in seconds.
    pub fn transfer_secs(&self, bytes: f64) -> f64 {
        assert!(bytes >= 0.0);
        self.latency_s + bytes / self.bandwidth_bps
    }

    /// Time to move `bytes`, rounded up to the workspace tick grid.
    pub fn transfer_dur(&self, bytes: f64) -> Dur {
        Dur::from_ticks((self.transfer_secs(bytes) * lsps_des::TICKS_PER_SEC as f64).ceil() as u64)
    }

    /// Effective throughput (bytes/s) for a message of `bytes`, i.e.
    /// `bytes / transfer_secs` — approaches `bandwidth_bps` for large
    /// messages, collapses for small ones (the latency wall the PT model
    /// hides in its penalty factor).
    pub fn effective_bandwidth(&self, bytes: f64) -> f64 {
        assert!(bytes > 0.0);
        bytes / self.transfer_secs(bytes)
    }
}

/// Where two processors sit relative to each other in the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkLevel {
    /// Same SMP node.
    IntraNode,
    /// Same cluster, different nodes.
    IntraCluster,
    /// Different clusters of the grid.
    InterCluster,
}

/// Three-level hierarchical network model of a light grid (Fig. 1).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Link inside an SMP node.
    pub intra_node: LinkClass,
    /// Link inside a cluster (the cluster's interconnect).
    pub intra_cluster: LinkClass,
    /// Link between clusters.
    pub inter_cluster: LinkClass,
}

impl NetworkModel {
    /// A model with the given three levels.
    pub fn new(intra_node: LinkClass, intra_cluster: LinkClass, inter_cluster: LinkClass) -> Self {
        NetworkModel {
            intra_node,
            intra_cluster,
            inter_cluster,
        }
    }

    /// The default light-grid hierarchy: SMP bus / GigE / campus WAN.
    pub fn light_grid_default() -> Self {
        NetworkModel::new(
            LinkClass::smp_bus(),
            LinkClass::gige(),
            LinkClass::campus_wan(),
        )
    }

    /// The link class used at `level`.
    pub fn link(&self, level: NetworkLevel) -> LinkClass {
        match level {
            NetworkLevel::IntraNode => self.intra_node,
            NetworkLevel::IntraCluster => self.intra_cluster,
            NetworkLevel::InterCluster => self.inter_cluster,
        }
    }

    /// Transfer time of `bytes` at `level`, in seconds.
    pub fn transfer_secs(&self, level: NetworkLevel, bytes: f64) -> f64 {
        self.link(level).transfer_secs(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_cost() {
        let l = LinkClass::new(0.001, 1000.0);
        assert!((l.transfer_secs(0.0) - 0.001).abs() < 1e-12);
        assert!((l.transfer_secs(2000.0) - 2.001).abs() < 1e-12);
    }

    #[test]
    fn transfer_dur_rounds_up() {
        let l = LinkClass::new(0.0, 1000.0); // 1 byte = 1 ms = 1 tick
        assert_eq!(l.transfer_dur(1.0), Dur::from_ticks(1));
        assert_eq!(l.transfer_dur(1.5), Dur::from_ticks(2));
        assert_eq!(l.transfer_dur(0.0), Dur::ZERO);
    }

    #[test]
    fn effective_bandwidth_saturates() {
        let l = LinkClass::gige();
        let small = l.effective_bandwidth(1e3);
        let large = l.effective_bandwidth(1e9);
        assert!(
            small < 0.2 * l.bandwidth_bps,
            "latency dominates small messages"
        );
        assert!(
            large > 0.9 * l.bandwidth_bps,
            "large messages reach line rate"
        );
    }

    #[test]
    fn hierarchy_is_ordered() {
        // A light grid must have strictly "faster inside than outside".
        let nm = NetworkModel::light_grid_default();
        let b = 1e6;
        let tn = nm.transfer_secs(NetworkLevel::IntraNode, b);
        let tc = nm.transfer_secs(NetworkLevel::IntraCluster, b);
        let tg = nm.transfer_secs(NetworkLevel::InterCluster, b);
        assert!(tn < tc && tc < tg, "{tn} < {tc} < {tg}");
    }

    #[test]
    fn fig3_interconnect_classes_ranked() {
        let b = 10e6; // 10 MB
        let myri = LinkClass::myrinet().transfer_secs(b);
        let gige = LinkClass::gige().transfer_secs(b);
        let eth = LinkClass::eth100().transfer_secs(b);
        assert!(myri < gige && gige < eth);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        LinkClass::new(0.0, 0.0);
    }
}
