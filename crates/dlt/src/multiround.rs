//! Multi-installment (multi-round) distribution.
//!
//! "This distribution can be made in one, several rounds or dynamically"
//! (§2.1). Splitting the load into several rounds lets workers start
//! computing while the master is still distributing — pipelining — at the
//! price of one extra latency per message. This module evaluates a
//! geometric multi-round scheme by exact one-port simulation, so the
//! latency-vs-pipelining crossover the `dlt_policies` experiment reports is
//! measured, not assumed.

use crate::model::{DltPlan, Worker};

/// Multi-round configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MultiRoundParams {
    /// Number of installments (≥ 1; 1 degenerates to a proportional
    /// single round).
    pub rounds: usize,
    /// Geometric growth of round sizes: round `r` carries weight
    /// `growth^r`. Values > 1 start small (prime the pipeline) and finish
    /// with big chunks; 1.0 = equal rounds.
    pub growth: f64,
}

impl Default for MultiRoundParams {
    fn default() -> Self {
        MultiRoundParams {
            rounds: 4,
            growth: 2.0,
        }
    }
}

/// Distribute `w` units in `params.rounds` installments over one-port
/// links and report the exact simulated makespan. Within a round the load
/// is split proportionally to worker speeds.
pub fn multi_round(w: f64, workers: &[Worker], params: MultiRoundParams) -> DltPlan {
    assert!(w > 0.0 && !workers.is_empty());
    assert!(params.rounds >= 1 && params.growth > 0.0);
    let n = workers.len();
    let total_speed: f64 = workers.iter().map(|x| x.speed).sum();

    // Round weights: growth^r, normalized.
    let weights: Vec<f64> = (0..params.rounds)
        .map(|r| params.growth.powi(r as i32))
        .collect();
    let weight_sum: f64 = weights.iter().sum();

    // Exact one-port simulation.
    let mut port_free = 0.0f64; // master's outgoing port
    let mut worker_free = vec![0.0f64; n]; // per-worker compute availability
    let mut alphas = vec![0.0f64; n];
    for &rw in &weights {
        let round_load = w * rw / weight_sum;
        for (i, wk) in workers.iter().enumerate() {
            let chunk = round_load * wk.speed / total_speed;
            if chunk <= 0.0 {
                continue;
            }
            let recv_start = port_free;
            let recv_end = recv_start + wk.recv_time(chunk);
            port_free = recv_end;
            let comp_start = recv_end.max(worker_free[i]);
            worker_free[i] = comp_start + wk.compute_time(chunk);
            alphas[i] += chunk;
        }
    }
    let makespan = worker_free.into_iter().fold(0.0, f64::max);
    let plan = DltPlan { alphas, makespan };
    plan.check(w);
    plan
}

/// Sweep round counts and return `(best_rounds, best_plan)` — the
/// experiment-facing helper for the latency/pipelining trade-off.
pub fn best_round_count(
    w: f64,
    workers: &[Worker],
    max_rounds: usize,
    growth: f64,
) -> (usize, DltPlan) {
    assert!(max_rounds >= 1);
    (1..=max_rounds)
        .map(|rounds| {
            (
                rounds,
                multi_round(w, workers, MultiRoundParams { rounds, growth }),
            )
        })
        .min_by(|a, b| {
            a.1.makespan
                .partial_cmp(&b.1.makespan)
                .expect("finite makespans")
        })
        .expect("at least one candidate")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, speed: f64, bw: f64, lat: f64) -> Vec<Worker> {
        vec![Worker::new(speed, bw, lat); n]
    }

    #[test]
    fn single_round_degenerate_case() {
        let ws = uniform(2, 1.0, 10.0, 0.0);
        let plan = multi_round(
            100.0,
            &ws,
            MultiRoundParams {
                rounds: 1,
                growth: 1.0,
            },
        );
        plan.check(100.0);
        // Proportional split: 50/50; worker 2 waits for worker 1's message.
        assert!((plan.alphas[0] - 50.0).abs() < 1e-9);
        // Worker 2: recv ends at 10, computes 50 → 60.
        assert!((plan.makespan - 60.0).abs() < 1e-9);
    }

    #[test]
    fn pipelining_helps_when_latency_is_low() {
        let ws = uniform(4, 1.0, 2.0, 0.0);
        let one = multi_round(
            400.0,
            &ws,
            MultiRoundParams {
                rounds: 1,
                growth: 1.0,
            },
        );
        let eight = multi_round(
            400.0,
            &ws,
            MultiRoundParams {
                rounds: 8,
                growth: 1.5,
            },
        );
        assert!(
            eight.makespan < one.makespan,
            "pipelined {} vs single {}",
            eight.makespan,
            one.makespan
        );
    }

    #[test]
    fn latency_punishes_many_rounds() {
        let ws = uniform(4, 1.0, 100.0, 2.0); // brutal latency
        let two = multi_round(
            100.0,
            &ws,
            MultiRoundParams {
                rounds: 2,
                growth: 1.0,
            },
        );
        let fifty = multi_round(
            100.0,
            &ws,
            MultiRoundParams {
                rounds: 50,
                growth: 1.0,
            },
        );
        assert!(
            fifty.makespan > two.makespan,
            "50 rounds {} vs 2 rounds {}",
            fifty.makespan,
            two.makespan
        );
    }

    #[test]
    fn best_round_count_finds_the_crossover() {
        // Low latency: best > 1 round. High latency: best = 1–2 rounds.
        let fast_net = uniform(4, 1.0, 2.0, 1e-4);
        let (r_fast, _) = best_round_count(400.0, &fast_net, 16, 1.5);
        assert!(r_fast > 1, "fast network wants pipelining, got {r_fast}");

        let slow_net = uniform(4, 1.0, 2.0, 30.0);
        let (r_slow, _) = best_round_count(400.0, &slow_net, 16, 1.5);
        assert!(
            r_slow <= 2,
            "latency-bound network wants few rounds, got {r_slow}"
        );
    }

    #[test]
    fn makespan_above_compute_floor() {
        let ws = uniform(3, 2.0, 4.0, 0.1);
        let plan = multi_round(300.0, &ws, MultiRoundParams::default());
        assert!(plan.makespan >= 300.0 / 6.0);
    }

    #[test]
    fn heterogeneous_split_follows_speeds() {
        let ws = vec![Worker::new(3.0, 10.0, 0.0), Worker::new(1.0, 10.0, 0.0)];
        let plan = multi_round(80.0, &ws, MultiRoundParams::default());
        assert!((plan.alphas[0] - 60.0).abs() < 1e-9);
        assert!((plan.alphas[1] - 20.0).abs() < 1e-9);
    }
}
