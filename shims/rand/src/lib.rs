//! Offline shim for the `rand` crate: the traits and the few combinators
//! the workspace actually uses (`RngCore`, `SeedableRng`, `Rng::gen`,
//! `Rng::gen_range`). API-compatible for those items with `rand 0.8` so the
//! real crate can be swapped back in from a registry without source changes.

use std::fmt;
use std::ops::RangeInclusive;

/// Error type returned by [`RngCore::try_fill_bytes`].
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-number generation interface.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`fill_bytes`](RngCore::fill_bytes); infallible here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Seedable construction with the `rand_core 0.6` `seed_from_u64`
/// expansion (a PCG32 stream fills the seed words), bit-compatible with
/// upstream so seed-tuned experiments reproduce the same instances.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding via PCG32 exactly as
    /// `rand_core 0.6` does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            for (b, byte) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from all bit patterns (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[lo, hi]` with `rand 0.8`'s
/// `sample_single_inclusive` algorithm (widening multiply + rejection),
/// bit-compatible with upstream for 64-bit draws.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi);
    let range = hi.wrapping_sub(lo).wrapping_add(1);
    if range == 0 {
        // Full u64 span.
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (range as u128);
        let (m_hi, m_lo) = ((m >> 64) as u64, m as u64);
        if m_lo <= zone {
            return lo.wrapping_add(m_hi);
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                uniform_u64(rng, lo as u64, hi as u64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                uniform_u64(rng, self.start as u64, self.end as u64 - 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weak LCG: enough to exercise the combinators.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = Counter(42);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(5u64..=10);
            assert!((5..=10).contains(&x));
            let y: usize = r.gen_range(0usize..3);
            assert!(y < 3);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
